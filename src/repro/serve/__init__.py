"""Placement-as-a-service: the paper's runtime as a long-lived daemon.

The paper's ``GetAllocation`` routine (Fig. 9) is request/response
shaped: {sizes, hotness} in, placement hints out.  Production
tiered-memory placement runs exactly this way — a system service (TPP)
or a runtime tool consulted by applications — so this package wraps the
repro library in an asyncio HTTP daemon:

* :class:`ServeApp` / :func:`run` — the daemon itself
  (``repro serve``);
* :class:`PlacementService` — protocol-independent request semantics
  (micro-batched placement, deduplicated + bounded + cached simulate,
  cached profiles, Prometheus metrics);
* :class:`ServeClient` — stdlib client library (``repro request``);
* :class:`ServeConfig` — every knob in one dataclass;
* :class:`BackgroundServer` — in-process harness for tests/embedding.

See ``docs/api.md`` ("Serving") for the endpoint catalogue and
semantics.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionShedError,
    ShardUnavailableError,
)
from repro.serve.batching import (
    BatchSaturatedError,
    MicroBatcher,
    SingleFlight,
)
from repro.serve.client import ServeClient
from repro.serve.cluster import (
    BackgroundCluster,
    RouterApp,
    run_cluster,
)
from repro.serve.config import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ROLE_ROUTER,
    ROLE_SHARD,
    ROLE_SINGLE,
    SERVE_URL_ENV,
    ServeConfig,
    default_serve_url,
)
from repro.serve.http import BackgroundServer, ServeApp, run
from repro.serve.metrics import MetricsRegistry, parse_metrics
from repro.serve.ring import HashRing
from repro.serve.service import (
    BadRequestError,
    DeadlineExceededError,
    PlacementService,
    ServiceSaturatedError,
    ServiceUnavailableError,
)

__all__ = [
    "AdmissionController",
    "AdmissionShedError",
    "BackgroundCluster",
    "BackgroundServer",
    "BadRequestError",
    "BatchSaturatedError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DeadlineExceededError",
    "HashRing",
    "MetricsRegistry",
    "MicroBatcher",
    "PlacementService",
    "ROLE_ROUTER",
    "ROLE_SHARD",
    "ROLE_SINGLE",
    "RouterApp",
    "SERVE_URL_ENV",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServiceSaturatedError",
    "ServiceUnavailableError",
    "ShardUnavailableError",
    "SingleFlight",
    "default_serve_url",
    "parse_metrics",
    "run",
    "run_cluster",
]
