"""Client library for the placement daemon (stdlib ``urllib`` only).

:class:`ServeClient` mirrors the daemon's endpoints one method each and
speaks plain JSON over HTTP, so it works against any ``repro serve``
instance with zero dependencies::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8077")
    hints = client.placement(sizes=[1 << 20, 8 << 20],
                             hotness=[100.0, 1.0],
                             bo_capacity_bytes=1 << 20)["hints"]
    report = client.simulate(workload="bfs", policy="BW-AWARE",
                             trace_accesses=20_000)

Failures raise :class:`~repro.core.errors.ServeError` carrying the HTTP
status, the decoded error payload, and — for 429 backpressure — the
server's ``Retry-After`` hint.  :meth:`ServeClient.simulate` can retry
that case itself (``retries=``), which is the intended client-side
reaction to graceful degradation.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional, Sequence, Union

from repro.core.errors import ServeError
from repro.obs import trace as obs_trace
from repro.resilience import BackoffPolicy
from repro.serve.config import default_serve_url
from repro.serve.metrics import parse_metrics

#: HTTP statuses worth re-submitting: queue saturation (429) and
#: temporary unavailability — draining or an open circuit breaker (503).
RETRYABLE_STATUSES = frozenset({429, 503})


class ServeClient:
    """Synchronous client for one daemon instance."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout_s: float = 300.0,
                 backoff: Optional[BackoffPolicy] = None) -> None:
        self.base_url = (base_url or default_serve_url()).rstrip("/")
        self.timeout_s = timeout_s
        #: governs sleeps between simulate retries when the server does
        #: not send a usable ``Retry-After``; also caps the cumulative
        #: time spent sleeping across one ``simulate`` call.
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base_s=0.25, factor=2.0, max_s=5.0, max_total_s=60.0
        )
        self._sleep = time.sleep  # test seam

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Mapping[str, Any]] = None
                 ) -> tuple[int, Mapping[str, str], bytes]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        token = None
        if obs_trace.enabled():
            trace_id = obs_trace.current_trace_id()
            if trace_id is None:
                trace_id = obs_trace.new_trace_id()
                token = obs_trace.set_trace_id(trace_id)
            headers[obs_trace.TRACE_ID_HEADER] = trace_id
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers,
            method=method,
        )
        try:
            return self._send(request, method, path)
        finally:
            if token is not None:
                obs_trace.reset_trace_id(token)

    def _send(self, request: urllib.request.Request, method: str,
              path: str) -> tuple[int, Mapping[str, str], bytes]:
        with obs_trace.span("client.request", cat="client",
                            method=method, path=path) as span:
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout_s) as response:
                    span.annotate(status=response.status)
                    return (response.status,
                            {k.lower(): v
                             for k, v in response.headers.items()},
                            response.read())
            except urllib.error.HTTPError as exc:
                span.annotate(status=exc.code)
                with exc:
                    return (exc.code,
                            {k.lower(): v
                             for k, v in exc.headers.items()},
                            exc.read())
            except urllib.error.URLError as exc:
                span.annotate(error=type(exc).__name__)
                raise ServeError(
                    f"cannot reach {self.base_url}: {exc.reason}",
                    status=0,
                )
            except (OSError, http.client.HTTPException) as exc:
                # Mid-read failures — the connection dropped or timed
                # out *after* urlopen returned — arrive as raw
                # ConnectionResetError / IncompleteRead / TimeoutError,
                # not URLError.  Wrap them so callers see one exception
                # type for every transport failure.
                span.annotate(error=type(exc).__name__)
                raise ServeError(
                    f"transport error talking to {self.base_url}: "
                    f"{type(exc).__name__}: {exc}",
                    status=0,
                )

    def _json(self, method: str, path: str,
              payload: Optional[Mapping[str, Any]] = None) -> dict:
        status, headers, body = self._request(method, path, payload)
        return self._decode(status, headers, body)

    def _decode(self, status: int, headers: Mapping[str, str],
                body: bytes) -> dict:
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": body[:200].decode("latin-1")}
        if 200 <= status < 300:
            return decoded
        retry_after: Optional[float] = None
        raw_retry = headers.get("retry-after")
        if raw_retry is not None:
            try:
                retry_after = float(raw_retry)
            except ValueError:
                retry_after = None
        raise ServeError(
            decoded.get("error", f"HTTP {status}"),
            status=status, retry_after=retry_after, payload=decoded,
        )

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — raw Prometheus exposition text."""
        status, _, body = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics endpoint returned {status}",
                             status=status)
        return body.decode("utf-8")

    def metrics(self) -> dict[str, float]:
        """``GET /metrics`` parsed into ``{'name{labels}': value}``."""
        return parse_metrics(self.metrics_text())

    def placement(self, sizes: Sequence[int],
                  hotness: Sequence[float],
                  bo_capacity_bytes: int,
                  topology: Union[str, Mapping[str, Any], None] = None,
                  bo_domain: Optional[int] = None) -> dict:
        """``POST /v1/placement`` — GetAllocation hints, micro-batched.

        Returns ``{"hints": ["BW"|"BO"|"CO", ...], ...}`` aligned with
        ``sizes``.  ``topology`` is a registered name (default
        ``"baseline"``) or ``{"bandwidth_gbps": [...]}``.
        """
        payload: dict[str, Any] = {
            "sizes": list(sizes),
            "hotness": list(hotness),
            "bo_capacity_bytes": int(bo_capacity_bytes),
        }
        if topology is not None:
            payload["topology"] = topology
        if bo_domain is not None:
            payload["bo_domain"] = int(bo_domain)
        return self._json("POST", "/v1/placement", payload)

    def simulate(self, workload: str, policy: str = "BW-AWARE",
                 dataset: str = "default",
                 topology: Optional[str] = None,
                 bo_capacity_fraction: Optional[float] = None,
                 trace_accesses: Optional[int] = None,
                 seed: int = 0, engine: str = "throughput",
                 training_dataset: Optional[str] = None,
                 retries: int = 0) -> dict:
        """``POST /v1/simulate`` — run (or fetch) one experiment.

        ``retries`` > 0 re-submits when the server signals transient
        trouble — queue saturation (429) or unavailability while
        draining / breaker-open (503).  The sleep between attempts is
        the server's ``Retry-After`` hint capped at the backoff
        policy's ``max_s``, or the policy's own exponential delay when
        no hint is sent; cumulative sleep is bounded by the policy's
        ``max_total_s``, after which the last error raises even if
        retries remain.  All other errors raise immediately.
        """
        payload: dict[str, Any] = {
            "workload": workload, "policy": policy, "dataset": dataset,
            "seed": seed, "engine": engine,
        }
        if topology is not None:
            payload["topology"] = topology
        if bo_capacity_fraction is not None:
            payload["bo_capacity_fraction"] = bo_capacity_fraction
        if trace_accesses is not None:
            payload["trace_accesses"] = trace_accesses
        if training_dataset is not None:
            payload["training_dataset"] = training_dataset
        attempts = max(0, int(retries)) + 1
        slept_s = 0.0
        for attempt in range(attempts):
            try:
                return self._json("POST", "/v1/simulate", payload)
            except ServeError as exc:
                if (exc.status not in RETRYABLE_STATUSES
                        or attempt == attempts - 1
                        or self.backoff.exhausted(slept_s)):
                    raise
                if exc.retry_after is not None and exc.retry_after > 0:
                    delay = min(exc.retry_after, self.backoff.max_s)
                else:
                    delay = self.backoff.delay(attempt)
                self._sleep(delay)
                slept_s += delay
        raise AssertionError("unreachable")  # pragma: no cover

    def autotune(self, workload: str, dataset: str = "default",
                 topology: Optional[str] = None,
                 engine: str = "throughput",
                 epochs: Optional[int] = None,
                 n_accesses: Optional[int] = None,
                 seed: int = 0,
                 controller: Optional[Mapping[str, float]] = None,
                 force: bool = False) -> dict:
        """``POST /v1/autotune`` — tune (or recall) an interleave ratio.

        Returns ``{"profile_key", "cached", "profile": {...}}`` where
        ``profile`` carries the tuned fractions, the closed-form SBIT
        split, and the tuned-vs-static times.  ``force=True`` ignores
        the persisted profile and re-tunes.
        """
        payload: dict[str, Any] = {
            "workload": workload, "dataset": dataset, "seed": seed,
            "engine": engine,
        }
        if topology is not None:
            payload["topology"] = topology
        if epochs is not None:
            payload["epochs"] = int(epochs)
        if n_accesses is not None:
            payload["n_accesses"] = int(n_accesses)
        if controller is not None:
            payload["controller"] = dict(controller)
        if force:
            payload["force"] = True
        return self._json("POST", "/v1/autotune", payload)

    def upload_trace(self, name: str,
                     data: Optional[bytes] = None,
                     path: Optional[str] = None,
                     fmt: Optional[str] = None) -> dict:
        """``POST /v1/traces`` — upload one DRAMSim2 trace.

        Pass raw ``data`` bytes or a local file ``path``; ``fmt`` is
        ``"k6"`` or ``"mase"`` (inferred from the registry name's
        prefix when omitted).  On success the response carries the
        checksum-carrying workload name (``trace:<name>#<sha12>``) to
        use with :meth:`simulate`.  Rejections raise
        :class:`ServeError` with status 422 and the structured
        ``ingest_error`` in ``payload``.
        """
        if (data is None) == (path is None):
            raise ServeError(
                "pass exactly one of data= or path= to upload_trace",
                status=0)
        if path is not None:
            with open(path, "rb") as handle:
                data = handle.read()
        query = f"name={name}"
        if fmt is not None:
            query += f"&format={fmt}"
        headers = {"Accept": "application/json",
                   "Content-Type": "application/octet-stream"}
        request = urllib.request.Request(
            self.base_url + f"/v1/traces?{query}", data=data,
            headers=headers, method="POST",
        )
        status, resp_headers, body = self._send(
            request, "POST", "/v1/traces")
        return self._decode(status, resp_headers, body)

    def traces(self) -> dict:
        """``GET /v1/traces`` — registered external traces."""
        return self._json("GET", "/v1/traces")

    def profile(self, workload: str, dataset: str = "default",
                accesses: Optional[int] = None, seed: int = 0) -> dict:
        """``GET /v1/profile/<workload>`` — cached hotness profile."""
        query = [f"dataset={dataset}", f"seed={seed}"]
        if accesses is not None:
            query.append(f"accesses={int(accesses)}")
        return self._json(
            "GET", f"/v1/profile/{workload}?" + "&".join(query)
        )

    def wait_until_ready(self, timeout_s: float = 30.0,
                         interval_s: float = 0.1) -> dict:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval_s)
