"""Consistent-hash ring for routing jobs to daemon shards.

The cluster router places every request on a shard by *job key* — the
canonical spec digest for ``/v1/simulate``, the workload name for
``/v1/profile`` — so that the per-shard single-flight dedup and the
in-memory caches (profiles, firmware tables, warm runner workers) keep
their locality after scale-out: identical work always lands on the same
live shard.

Classic Karger-style construction: each node is hashed onto the ring at
``replicas`` virtual points (sha256 of ``"{node}#{i}"``), a key maps to
the first virtual point clockwise from its own hash.  Properties the
test suite (``tests/test_serve_ring.py``) pins down:

* deterministic — same key, same node set, same answer, across
  processes (no PYTHONHASHSEED dependence: sha256, not ``hash()``);
* balanced — with the default 128 replicas, keys spread across N nodes
  within a small factor of the fair share;
* minimal disruption — removing a node only remaps the keys that were
  on it (everything else is untouched, which is what preserves cache
  locality through shard death), and adding a node back restores the
  exact previous mapping.

Nodes are opaque strings (the router uses stable shard names like
``"shard-0"``, *not* ports, so a respawned shard reclaims its keys).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional, Sequence

#: default virtual points per node; 128 keeps the max/fair-share spread
#: under ~1.4x for small clusters while the ring stays tiny.
DEFAULT_REPLICAS = 128


def _hash64(data: str) -> int:
    """First 8 bytes of sha256 as an unsigned int (ring coordinate)."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    Mutation (``add``/``remove``) is O(replicas · log ring); lookup is
    one hash plus a binary search.  The ring may be empty, in which
    case :meth:`node_for` returns ``None`` — the router treats that as
    "no live shards" (503, retryable).
    """

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []       # sorted ring coordinates
        self._owners: list[str] = []       # node owning each point
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add ``node``; idempotent."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = _hash64(f"{node}#{i}")
            idx = bisect.bisect_left(self._points, point)
            # sha256 collisions between distinct vnode labels are not a
            # practical concern; ties resolve by insertion order.
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Remove ``node``; idempotent."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep_points: list[int] = []
        keep_owners: list[str] = []
        for point, owner in zip(self._points, self._owners):
            if owner != node:
                keep_points.append(point)
                keep_owners.append(owner)
        self._points = keep_points
        self._owners = keep_owners

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The live node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        idx = bisect.bisect_right(self._points, _hash64(key))
        if idx == len(self._points):  # wrap past the top of the ring
            idx = 0
        return self._owners[idx]

    def distribution(self, keys: Sequence[str]) -> dict:
        """``{node: count}`` over ``keys`` (diagnostics and tests)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.node_for(key)
            if node is not None:
                counts[node] += 1
        return counts
