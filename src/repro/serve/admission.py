"""Admission control for the cluster router: lanes, watermarks, shedding.

The single daemon's only overload answer is a flat 429 once its
in-flight bound fills.  The router can do better because it sees *all*
traffic before any shard does; this module is that front door.

Three priority lanes, highest first:

* ``placement`` — the paper's ``GetAllocation``; closed-form and cheap,
  the path that must always answer;
* ``warm`` — simulate/profile work whose job key has completed before
  (a cache hit on the shard, typically milliseconds);
* ``cold`` — simulate work never seen by this router: a real experiment
  run, seconds of work, the first thing to sacrifice under pressure.

Each shard exposes a bounded number of concurrent proxy slots; requests
that cannot dispatch immediately wait in per-shard, per-lane FIFO
queues.  Dispatch is strict priority (placement before warm before
cold) and — so a flood of cold work can never occupy every slot —
lanes below ``placement`` are capped at ``slots - placement_reserved``
in-flight per shard.

Overload policy, in order:

* **watermarks** — when the total queued depth crosses ``high`` the
  controller starts shedding *new cold work* immediately (429), and
  keeps shedding until depth drains below ``low`` (hysteresis, so the
  shed/accept decision cannot flap per request);
* **eviction** — at the hard ``capacity``, an arriving higher-priority
  request evicts the *oldest queued entry of the lowest lane below its
  own* instead of being refused: the evicted waiter gets a retryable
  429, the new work takes its queue space (placement displaces cold,
  never the other way around);
* **shed** — only when there is nothing lower-priority to evict does
  the arriving request itself get the 429.

Every 429 carries a ``Retry-After`` derived from the *observed drain
rate* — completions per second over a sliding window — times the
queue depth at or above the caller's priority, clamped to a sane
range: a loaded-but-moving cluster says "come back in 2s", a stalled
one says "come back in 30s", neither is a hardcoded constant.

The controller is pure asyncio + an injectable clock; the unit suite
(``tests/test_serve_admission.py``) drives it with a fake clock and no
sockets.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional

from repro.core.errors import ServeError

#: lane indices in priority order (lower value = higher priority).
LANE_PLACEMENT = 0
LANE_WARM = 1
LANE_COLD = 2
LANES = ("placement", "warm", "cold")
LANE_INDEX = {name: i for i, name in enumerate(LANES)}


class AdmissionShedError(ServeError):
    """Work refused (or evicted) by admission control — 429, retryable.

    ``evicted`` distinguishes "queued and then displaced by
    higher-priority work" from "refused at the door"; both are
    retryable and carry the drain-rate-derived ``Retry-After``.
    """

    def __init__(self, message: str, retry_after: float,
                 evicted: bool = False) -> None:
        super().__init__(message, status=429, retry_after=retry_after)
        self.evicted = evicted


class ShardUnavailableError(ServeError):
    """The target shard is dead/absent — 503, retryable elsewhere."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, status=503, retry_after=retry_after)


class DrainRateEstimator:
    """Completions/second over a sliding window of recent completions.

    Feeds Retry-After: with fewer than 2 samples (a cold or stalled
    service) :meth:`rate` returns ``None`` and callers fall back to
    their pessimistic clamp.
    """

    def __init__(self, window: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._times: Deque[float] = deque(maxlen=max(2, window))

    def record(self) -> None:
        self._times.append(self._clock())

    def rate(self) -> Optional[float]:
        if len(self._times) < 2:
            return None
        elapsed = self._times[-1] - self._times[0]
        if elapsed <= 0:
            return None
        return (len(self._times) - 1) / elapsed


class _Waiter:
    __slots__ = ("future", "lane", "shard", "enqueued_at", "live")

    def __init__(self, future: "asyncio.Future", lane: int, shard: str,
                 enqueued_at: float) -> None:
        self.future = future
        self.lane = lane
        self.shard = shard
        self.enqueued_at = enqueued_at
        #: still counted in queue depth (cleared once dispatched,
        #: evicted, failed, or observed cancelled).
        self.live = True


class AdmissionController:
    """Priority-lane admission over a set of shard proxy-slot pools."""

    def __init__(self, shards: Iterable[str], *,
                 slots_per_shard: int,
                 capacity: int,
                 high_watermark: int,
                 low_watermark: int,
                 placement_reserved: int = 1,
                 retry_after_floor_s: float = 0.25,
                 retry_after_cap_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if slots_per_shard < 1:
            raise ValueError("slots_per_shard must be >= 1")
        if not (0 < low_watermark <= high_watermark <= capacity):
            raise ValueError(
                "need 0 < low <= high <= capacity "
                f"(got low={low_watermark} high={high_watermark} "
                f"capacity={capacity})")
        if not (0 <= placement_reserved < slots_per_shard):
            raise ValueError(
                "placement_reserved must be in [0, slots_per_shard)")
        self.slots_per_shard = slots_per_shard
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.placement_reserved = placement_reserved
        self.retry_after_floor_s = retry_after_floor_s
        self.retry_after_cap_s = retry_after_cap_s
        self._clock = clock
        self.drain = DrainRateEstimator(clock=clock)
        #: per shard, one FIFO per lane.
        self._queues: Dict[str, list] = {}
        #: per shard, in-flight count per lane.
        self._inflight: Dict[str, list] = {}
        self._queued_total = 0
        self._shedding = False
        #: observability hooks the router points at its counters.
        self.on_shed: Optional[Callable[[str, bool], None]] = None
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_shard(self, shard: str) -> None:
        if shard not in self._queues:
            self._queues[shard] = [deque() for _ in LANES]
            self._inflight[shard] = [0 for _ in LANES]

    def fail_shard(self, shard: str, reason: str) -> int:
        """Drop a dead shard: fail all its queued waiters retryably.

        Returns the number of waiters failed.  In-flight proxied
        requests are not touched here — their sockets fail on their
        own and the router maps that to a retryable 503.
        """
        queues = self._queues.pop(shard, None)
        self._inflight.pop(shard, None)
        if queues is None:
            return 0
        failed = 0
        for lane_queue in queues:
            while lane_queue:
                waiter = lane_queue.popleft()
                if not waiter.live:
                    continue
                waiter.live = False
                self._queued_total -= 1
                if not waiter.future.done():
                    waiter.future.set_exception(ShardUnavailableError(
                        f"shard {shard} became unavailable "
                        f"({reason}); retry"))
                    failed += 1
        self._update_shedding()
        return failed

    # ------------------------------------------------------------------
    # depth accounting
    # ------------------------------------------------------------------

    @property
    def queued_total(self) -> int:
        return self._queued_total

    @property
    def shedding(self) -> bool:
        return self._shedding

    def lane_depths(self) -> dict:
        """``{lane_name: queued}`` across all shards (metrics)."""
        depths = {name: 0 for name in LANES}
        for queues in self._queues.values():
            for lane, lane_queue in enumerate(queues):
                depths[LANES[lane]] += sum(
                    1 for w in lane_queue if w.live)
        return depths

    def inflight_total(self) -> int:
        return sum(sum(counts) for counts in self._inflight.values())

    def _update_shedding(self) -> None:
        if self._queued_total >= self.high_watermark:
            self._shedding = True
        elif self._queued_total <= self.low_watermark:
            self._shedding = False

    # ------------------------------------------------------------------
    # retry hints
    # ------------------------------------------------------------------

    def retry_after(self, lane: int) -> float:
        """Seconds until queued work at ``lane``'s priority should
        plausibly have drained, from the observed completion rate."""
        ahead = 1 + sum(
            1
            for queues in self._queues.values()
            for lane_idx in range(lane + 1)
            for w in queues[lane_idx] if w.live
        )
        rate = self.drain.rate()
        if rate is None or rate <= 0:
            return self.retry_after_cap_s
        return min(max(ahead / rate, self.retry_after_floor_s),
                   self.retry_after_cap_s)

    # ------------------------------------------------------------------
    # admit / release
    # ------------------------------------------------------------------

    def _lane_limit(self, lane: int) -> int:
        if lane == LANE_PLACEMENT:
            return self.slots_per_shard
        return self.slots_per_shard - self.placement_reserved

    def _can_dispatch(self, shard: str, lane: int) -> bool:
        counts = self._inflight[shard]
        if sum(counts) >= self.slots_per_shard:
            return False
        if lane != LANE_PLACEMENT:
            below = sum(counts[LANE_WARM:])
            if below >= self._lane_limit(lane):
                return False
        return True

    def _queues_empty_at_or_above(self, shard: str, lane: int) -> bool:
        queues = self._queues[shard]
        return all(
            not any(w.live for w in queues[i]) for i in range(lane + 1)
        )

    def _shed(self, lane: int, message: str,
              evicted: bool = False) -> AdmissionShedError:
        if self.on_shed is not None:
            self.on_shed(LANES[lane], evicted)
        return AdmissionShedError(
            message, retry_after=self.retry_after(lane), evicted=evicted)

    def _find_victim(self, lane: int) -> Optional[_Waiter]:
        """Oldest live waiter in the lowest-priority lane below
        ``lane``, across all shards."""
        for victim_lane in range(len(LANES) - 1, lane, -1):
            oldest: Optional[_Waiter] = None
            for queues in self._queues.values():
                for waiter in queues[victim_lane]:
                    if not waiter.live:
                        continue
                    if (oldest is None
                            or waiter.enqueued_at < oldest.enqueued_at):
                        oldest = waiter
                    break  # deques are FIFO: first live one is oldest
            if oldest is not None:
                return oldest
        return None

    async def admit(self, lane: int, shard: str) -> None:
        """Acquire a proxy slot on ``shard`` at ``lane`` priority.

        Returns when the slot is held (pair with :meth:`release`);
        raises :class:`AdmissionShedError` (429) when shed or evicted
        and :class:`ShardUnavailableError` (503) when the shard is not
        in the pool (died while the request was being routed).
        """
        if shard not in self._queues:
            raise ShardUnavailableError(
                f"shard {shard} is not available; retry")
        # Fast path: a free slot and nobody of equal/higher priority
        # already waiting for this shard.
        if (self._can_dispatch(shard, lane)
                and self._queues_empty_at_or_above(shard, lane)):
            self._inflight[shard][lane] += 1
            return
        # Must queue.  Watermark hysteresis: while shedding, new cold
        # work is refused at the door.
        if self._shedding and lane == LANE_COLD:
            raise self._shed(
                lane,
                f"queue depth {self._queued_total} over high watermark "
                f"{self.high_watermark}; cold work shed")
        if self._queued_total >= self.capacity:
            victim = self._find_victim(lane)
            if victim is None:
                raise self._shed(
                    lane,
                    f"admission queue full ({self.capacity} queued)")
            victim.live = False
            self._queued_total -= 1
            if not victim.future.done():
                victim.future.set_exception(self._shed(
                    victim.lane,
                    f"evicted from the {LANES[victim.lane]} queue by "
                    f"higher-priority {LANES[lane]} work",
                    evicted=True))
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future())
        waiter = _Waiter(future, lane, shard, self._clock())
        self._queues[shard][lane].append(waiter)
        self._queued_total += 1
        self._update_shedding()
        try:
            await future
        except asyncio.CancelledError:
            if waiter.live:
                waiter.live = False
                self._queued_total -= 1
                self._update_shedding()
            raise
        # Dispatched: _dispatch already moved us to in-flight.

    def release(self, shard: str, lane: int) -> None:
        """Give back a slot; wakes the next highest-priority waiter."""
        self.drain.record()
        counts = self._inflight.get(shard)
        if counts is None:  # shard was failed while we were in flight
            return
        if counts[lane] > 0:
            counts[lane] -= 1
        self._dispatch(shard)

    def _dispatch(self, shard: str) -> None:
        queues = self._queues.get(shard)
        if queues is None:
            return
        progressed = True
        while progressed:
            progressed = False
            for lane in range(len(LANES)):
                if not self._can_dispatch(shard, lane):
                    continue
                lane_queue = queues[lane]
                while lane_queue:
                    waiter = lane_queue.popleft()
                    if not waiter.live:
                        continue
                    waiter.live = False
                    self._queued_total -= 1
                    if waiter.future.done():  # cancelled under us
                        continue
                    self._inflight[shard][lane] += 1
                    waiter.future.set_result(None)
                    progressed = True
                    break
                if progressed:
                    break
        self._update_shedding()
