"""Scale-out serving: a front router over N worker-daemon shards.

The single ``repro serve`` daemon is one asyncio process — one GIL
between the service and "millions of users".  This module is the
scale-out tier: ``repro serve --shards N`` boots

* **N worker shards** — each a *complete, unmodified* daemon
  (:class:`~repro.serve.http.ServeApp` in its own spawned process,
  with its own breaker, drain, runner, caches, and tracing), bound to
  a loopback port; and
* **one router** (this process) — the only address clients see.  It
  speaks the same wire protocol (``ServeClient`` needs no changes),
  consistent-hash-routes every request on its *job key*, applies
  :mod:`~repro.serve.admission` in front of the shards, health-checks
  them, and respawns the dead.

Job keys preserve the single-daemon's coalescing across the scale-out:
``/v1/simulate`` routes on the canonical spec digest, so identical
concurrent simulations still land on one shard and collapse into one
runner job via its single-flight dedup; ``/v1/profile`` routes on the
workload name so the per-shard profile LRU keeps its hit rate;
``/v1/placement`` routes on the request's workload (if the client
names one) or topology, keeping the firmware-table cache warm.

Failure semantics: a shard that misses ``health_failures`` consecutive
health checks (or whose process exits) is removed from the ring — its
queued admissions fail with retryable 503s, its in-flight proxied
requests surface as retryable 503s when their sockets die, and every
*other* key keeps its shard (consistent hashing moves only the dead
shard's keys).  The router then respawns the shard on a fresh port and
splices it back into the ring under its stable name, so its keys
return home.  ``X-Trace-Id`` propagates router → shard, so one traced
request still yields one trace tree.

The router itself does no simulation work — its event loop only
parses, hashes, queues, and proxies — which is what keeps the
admission decisions cheap enough to make on every request (the paper's
bar for placement itself).
"""

from __future__ import annotations

import asyncio
import atexit
import json
import hashlib
import multiprocessing
import signal
import socket
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping, Optional

from repro.core.errors import ServeError
from repro.obs import trace as obs_trace
from repro.obs.log import log_event
from repro.serve.admission import (
    LANE_COLD,
    LANE_PLACEMENT,
    LANE_WARM,
    LANES,
    AdmissionController,
    AdmissionShedError,
    ShardUnavailableError,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ROLE_ROUTER, ServeConfig
from repro.serve.http import (
    METRICS_CONTENT_TYPE,
    _HttpRequest,
    _HttpResponse,
    drain_rejected_body,
    read_http_request,
    run as run_single,
)
from repro.serve.ring import HashRing
from repro.serve.service import (
    BadRequestError,
    autotune_job_key,
    parse_simulate_spec,
)

#: headers the router forwards verbatim to the shard.  The deadline
#: header is NOT forwarded raw — the router always sends the budget
#: *remaining* after queueing, so time spent in an admission lane
#: counts against the request like time anywhere else.
_FORWARD_HEADERS = ("content-type",)

#: headers the router copies back from the shard's response.
_RETURN_HEADERS = ("retry-after",)

#: process handles spawned by any router in this process; killed at
#: interpreter exit so a crashed router can never leak shard daemons.
_LIVE_PROCS: "set[multiprocessing.process.BaseProcess]" = set()


def _reap_stray_shards() -> None:  # pragma: no cover - exit path
    for proc in list(_LIVE_PROCS):
        if proc.is_alive():
            proc.terminate()


atexit.register(_reap_stray_shards)


def _shard_main(config: ServeConfig) -> None:  # pragma: no cover
    """Spawned-process entry: run one complete daemon as a shard."""
    run_single(config, ready_message=False)


def _free_port() -> int:
    """Ask the OS for a currently-free loopback port."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def simulate_job_key(payload: Mapping[str, Any]) -> str:
    """The routing key for a simulate payload: its canonical spec
    digest (identical requests → identical key → same shard → the
    shard's single-flight dedup and result cache both hit)."""
    spec = parse_simulate_spec(payload)
    blob = json.dumps(spec.canonical(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def placement_job_key(payload: Mapping[str, Any]) -> str:
    """Routing key for a placement payload.

    Placement bodies carry no mandatory workload field, so the key is
    the client-supplied ``workload`` when present (annotated runtimes
    send one), else the topology label — the axis the shard's
    firmware-table cache is keyed on.
    """
    workload = payload.get("workload")
    if isinstance(workload, str) and workload:
        return f"placement:{workload}"
    topology = payload.get("topology")
    if isinstance(topology, str) and topology:
        return f"placement:topology:{topology}"
    if isinstance(topology, Mapping):
        return "placement:topology:custom"
    return "placement:topology:baseline"


class ShardHandle:
    """One worker shard: stable name, current process, liveness."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.name = f"shard-{index}"
        self.port: int = 0
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.generation = 0
        self.up = False
        self.failures = 0
        self.respawning = False

    def describe(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "port": self.port,
            "pid": self.proc.pid if self.proc is not None else None,
            "up": self.up,
            "generation": self.generation,
        }


async def _raw_http(host: str, port: int, data: bytes,
                    timeout: Optional[float]
                    ) -> tuple[int, dict, bytes]:
    """One request/response exchange against a Connection: close peer.

    Returns ``(status, lowercase headers, body)``.
    """

    async def exchange() -> tuple[int, dict, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(data)
            await writer.drain()
            raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
        head, sep, body = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ConnectionError("truncated response from peer")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line {lines[0]!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None and length.isdigit():
            want = int(length)
            if len(body) < want:
                raise ConnectionError("truncated response body")
            body = body[:want]
        return status, headers, body

    return await asyncio.wait_for(exchange(), timeout=timeout)


class RouterApp:
    """The front router: admission + consistent-hash proxy tier."""

    def __init__(self, config: ServeConfig) -> None:
        if config.shards < 1:
            raise ServeError("RouterApp needs shards >= 1")
        self.config = config
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.metrics = MetricsRegistry()
        self.shards = [ShardHandle(i) for i in range(config.shards)]
        self.ring = HashRing()
        self.admission = AdmissionController(
            [],
            slots_per_shard=config.proxy_inflight_per_shard,
            capacity=config.admission_capacity,
            high_watermark=config.resolved_high_watermark(),
            low_watermark=config.resolved_low_watermark(),
            placement_reserved=config.placement_reserved_slots,
        )
        self.admission.on_shed = self._on_shed
        #: job keys whose simulate completed (→ warm lane next time).
        self._warm: OrderedDict[str, None] = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.Task] = set()
        self._health_task: Optional[asyncio.Task] = None
        self._respawn_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._ctx = multiprocessing.get_context("spawn")

        m = self.metrics
        self.m_requests = m.counter(
            "repro_router_requests_total",
            "Router HTTP requests by endpoint and status code.")
        self.m_latency = m.histogram(
            "repro_router_request_seconds",
            "Router end-to-end latency by admission lane.")
        self.m_routed = m.counter(
            "repro_router_routed_total",
            "Requests dispatched to a shard, by shard and lane.")
        self.m_shed = m.counter(
            "repro_router_shed_total",
            "Requests refused at the door by admission control, "
            "by lane.")
        self.m_evicted = m.counter(
            "repro_router_evicted_total",
            "Queued requests evicted by higher-priority work, by lane.")
        self.m_lane_depth = m.gauge(
            "repro_router_lane_depth",
            "Queued requests awaiting a shard slot, by lane.")
        self.m_inflight = m.gauge(
            "repro_router_inflight",
            "Requests currently proxied to shards.")
        self.m_shard_up = m.gauge(
            "repro_router_shard_up",
            "1 while the shard answers health checks, else 0.")
        self.m_respawns = m.counter(
            "repro_router_shard_respawns_total",
            "Dead shards respawned by the router, by shard.")
        self.m_proxy_failures = m.counter(
            "repro_router_proxy_failures_total",
            "Proxied requests that failed mid-flight, by shard "
            "(each one answered with a retryable 503).")
        self.m_no_shards = m.counter(
            "repro_router_no_live_shards_total",
            "Requests refused because the ring was empty.")
        self.m_warm_keys = m.gauge(
            "repro_router_warm_keys",
            "Completed job keys remembered for lane classification.")

    # ------------------------------------------------------------------
    # metric hooks
    # ------------------------------------------------------------------

    def _on_shed(self, lane_name: str, evicted: bool) -> None:
        if evicted:
            self.m_evicted.inc(lane=lane_name)
        else:
            self.m_shed.inc(lane=lane_name)

    def _refresh_gauges(self) -> None:
        for lane_name, depth in self.admission.lane_depths().items():
            self.m_lane_depth.set(depth, lane=lane_name)
        self.m_inflight.set(self.admission.inflight_total())
        self.m_warm_keys.set(len(self._warm))
        for shard in self.shards:
            self.m_shard_up.set(1 if shard.up else 0, shard=shard.name)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _spawn(self, shard: ShardHandle) -> None:
        """Start (or restart) the worker process for ``shard``."""
        shard.port = _free_port()
        shard.generation += 1
        config = self.config.shard_config(shard.index, shard.port)
        proc = self._ctx.Process(
            target=_shard_main, args=(config,),
            name=f"repro-{shard.name}-gen{shard.generation}",
        )
        proc.start()
        shard.proc = proc
        _LIVE_PROCS.add(proc)

    async def _wait_shard_ready(self, shard: ShardHandle,
                                timeout_s: float = 60.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline and not self._stopping:
            if shard.proc is None or not shard.proc.is_alive():
                return False
            try:
                status, _, _ = await _raw_http(
                    "127.0.0.1", shard.port,
                    b"GET /healthz HTTP/1.1\r\nHost: shard\r\n"
                    b"Connection: close\r\n\r\n",
                    timeout=self.config.health_timeout_s)
                if status == 200:
                    return True
            except (OSError, asyncio.TimeoutError, ConnectionError):
                pass
            await asyncio.sleep(0.05)
        return False

    async def start(self) -> None:
        for shard in self.shards:
            self._spawn(shard)
        ready = await asyncio.gather(
            *(self._wait_shard_ready(shard) for shard in self.shards))
        if not all(ready):
            await self._teardown_shards()
            bad = [s.name for s, ok in zip(self.shards, ready) if not ok]
            raise ServeError(f"shards failed to start: {bad}")
        for shard in self.shards:
            shard.up = True
            self.ring.add(shard.name)
            self.admission.add_shard(shard.name)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="repro-router-health")

    async def stop(self) -> None:
        self._stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = {t for t in self._connections if not t.done()}
        if pending and self.config.drain_timeout_s > 0:
            await asyncio.wait(pending,
                               timeout=self.config.drain_timeout_s)
        for shard in self.shards:
            self.admission.fail_shard(shard.name, "router stopping")
        await self._teardown_shards()

    async def _teardown_shards(self) -> None:
        """SIGTERM every shard (graceful drain), then join, then kill."""
        procs = [s.proc for s in self.shards if s.proc is not None]
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + self.config.drain_timeout_s + 5.0
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            await asyncio.get_running_loop().run_in_executor(
                None, proc.join, remaining)
            if proc.is_alive():  # pragma: no cover - stuck shard
                proc.kill()
                await asyncio.get_running_loop().run_in_executor(
                    None, proc.join, 5.0)
            _LIVE_PROCS.discard(proc)

    # ------------------------------------------------------------------
    # health checking / respawn
    # ------------------------------------------------------------------

    async def _health_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.health_interval_s)
            await asyncio.gather(
                *(self._check_shard(s) for s in self.shards
                  if not s.respawning))

    async def _check_shard(self, shard: ShardHandle) -> None:
        alive = shard.proc is not None and shard.proc.is_alive()
        healthy = False
        if alive:
            try:
                status, _, _ = await _raw_http(
                    "127.0.0.1", shard.port,
                    b"GET /healthz HTTP/1.1\r\nHost: shard\r\n"
                    b"Connection: close\r\n\r\n",
                    timeout=self.config.health_timeout_s)
                healthy = status == 200
            except (OSError, asyncio.TimeoutError, ConnectionError):
                healthy = False
        if healthy:
            shard.failures = 0
            if not shard.up:  # pragma: no cover - transient flap
                shard.up = True
                self.ring.add(shard.name)
                self.admission.add_shard(shard.name)
            return
        shard.failures += 1
        if not alive or shard.failures >= self.config.health_failures:
            self._mark_down(
                shard,
                "process exited" if not alive
                else f"{shard.failures} failed health checks")

    def _mark_down(self, shard: ShardHandle, reason: str) -> None:
        if shard.respawning:
            return
        shard.up = False
        shard.respawning = True
        self.ring.remove(shard.name)
        failed = self.admission.fail_shard(shard.name, reason)
        self.m_shard_up.set(0, shard=shard.name)
        log_event("router.shard_down", shard=shard.name,
                  reason=reason, failed_waiters=failed,
                  message=f"{shard.name} down ({reason}); "
                          f"failed {failed} queued request(s), "
                          "respawning", stream=sys.stderr)
        task = asyncio.get_running_loop().create_task(
            self._respawn(shard), name=f"respawn-{shard.name}")
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, shard: ShardHandle) -> None:
        try:
            while not self._stopping:
                old = shard.proc
                if old is not None:
                    if old.is_alive():
                        old.kill()
                    await asyncio.get_running_loop().run_in_executor(
                        None, old.join, 10.0)
                    _LIVE_PROCS.discard(old)
                self._spawn(shard)
                if await self._wait_shard_ready(shard):
                    shard.up = True
                    shard.failures = 0
                    self.ring.add(shard.name)
                    self.admission.add_shard(shard.name)
                    self.m_respawns.inc(shard=shard.name)
                    self.m_shard_up.set(1, shard=shard.name)
                    log_event("router.shard_up", shard=shard.name,
                              port=shard.port,
                              generation=shard.generation,
                              message=f"{shard.name} respawned on port "
                                      f"{shard.port} (generation "
                                      f"{shard.generation})",
                              stream=sys.stderr)
                    return
                await asyncio.sleep(0.5)  # spawn failed; try again
        finally:
            shard.respawning = False

    # ------------------------------------------------------------------
    # protocol plumbing (same shapes as ServeApp)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        request = None
        try:
            try:
                request = await read_http_request(
                    reader, self.config.max_body_bytes,
                    idle_timeout_s=self.config.header_read_timeout_s)
            except ServeError as exc:
                body = dict(exc.payload)
                body["error"] = str(exc)
                writer.write(_HttpResponse.json(
                    body, status=exc.status or 400).encode())
                await writer.drain()
                if exc.status == 413:
                    await drain_rejected_body(
                        reader, self.config.header_read_timeout_s)
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            response = await self._respond(request)
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            if request is not None:
                request.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond(self, request: _HttpRequest) -> _HttpResponse:
        trace_id = request.headers.get(obs_trace.TRACE_ID_HEADER.lower())
        if trace_id is None and obs_trace.enabled():
            trace_id = obs_trace.new_trace_id()
        if trace_id is None:
            return await self._dispatch(request)
        token = obs_trace.set_trace_id(trace_id)
        try:
            with obs_trace.lane():
                with obs_trace.span("router.request", cat="router",
                                    method=request.method,
                                    path=request.path) as span:
                    response = await self._dispatch(request)
                    span.annotate(status=response.status)
        finally:
            obs_trace.reset_trace_id(token)
        response.headers.setdefault(obs_trace.TRACE_ID_HEADER, trace_id)
        return response

    def _route(self, request: _HttpRequest):
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return "healthz", "local"
        if path == "/metrics" and method == "GET":
            return "metrics", "local"
        if path == "/v1/placement" and method == "POST":
            return "placement", "proxy"
        if path == "/v1/simulate" and method == "POST":
            return "simulate", "proxy"
        if path == "/v1/autotune" and method == "POST":
            return "autotune", "proxy"
        if path == "/v1/traces" and method in ("POST", "GET"):
            return "traces", "proxy"
        if path.startswith("/v1/profile/") and method == "GET":
            return "profile", "proxy"
        known = {"/healthz", "/metrics", "/v1/placement", "/v1/simulate",
                 "/v1/autotune", "/v1/traces"}
        if path in known or path.startswith("/v1/profile/"):
            return "other", None  # right path, wrong method
        return "other", False  # unknown path

    async def _dispatch(self, request: _HttpRequest) -> _HttpResponse:
        endpoint, kind = self._route(request)
        loop = asyncio.get_running_loop()
        started = loop.time()
        timeout = self.config.request_timeout_s
        hint = request.timeout_hint()
        if hint is not None:
            timeout = min(timeout, hint)
        request.deadline = time.monotonic() + timeout
        lane_name = "none"
        if kind is None:
            response = _HttpResponse.json(
                {"error": f"method {request.method} not allowed "
                          f"for {request.path}"}, status=405)
        elif kind is False:
            response = _HttpResponse.json(
                {"error": f"no route {request.path}"}, status=404)
        elif kind == "local":
            if endpoint == "healthz":
                response = _HttpResponse.json(self.health())
            else:
                self._refresh_gauges()
                response = _HttpResponse(
                    200, self.metrics.render().encode("utf-8"),
                    content_type=METRICS_CONTENT_TYPE)
        else:
            try:
                lane, key = self._classify(endpoint, request)
                lane_name = LANES[lane]
                response = await asyncio.wait_for(
                    self._proxy_endpoint(endpoint, lane, key, request),
                    timeout=timeout)
            except asyncio.TimeoutError:
                response = _HttpResponse.json(
                    {"error": f"request timed out after {timeout}s"},
                    status=504)
            except ServeError as exc:
                headers = {}
                if exc.retry_after is not None:
                    headers["Retry-After"] = (
                        f"{max(exc.retry_after, 0.0):g}")
                body = dict(exc.payload)
                body["error"] = str(exc)
                response = _HttpResponse.json(
                    body, status=exc.status or 400,
                    headers=headers)
            except Exception as exc:  # noqa: BLE001 - daemon boundary
                response = _HttpResponse.json(
                    {"error": f"internal error: "
                              f"{type(exc).__name__}: {exc}"},
                    status=500)
        self.m_requests.inc(endpoint=endpoint,
                            status=str(response.status))
        self.m_latency.observe(loop.time() - started, lane=lane_name)
        return response

    # ------------------------------------------------------------------
    # routing + admission + proxy
    # ------------------------------------------------------------------

    def _classify(self, endpoint: str,
                  request: _HttpRequest) -> tuple[int, str]:
        """(lane, job key) for a proxied request.

        Lane order is the admission priority: placement always
        answers; simulate work whose key completed before is warm
        (a cache hit on its shard); never-seen simulate work is cold
        and first to shed.
        """
        if endpoint == "placement":
            return LANE_PLACEMENT, placement_job_key(request.json())
        if endpoint == "profile":
            workload = request.path[len("/v1/profile/"):]
            if not workload or "/" in workload:
                raise ServeError(f"bad profile path {request.path!r}",
                                 status=404)
            return LANE_WARM, f"profile:{workload}"
        if endpoint == "autotune":
            # Warm lane: tuned profiles persist in the shard's result
            # cache, so repeat requests are profile-store hits — and a
            # first-time tuning run is epoch-bounded, nothing like a
            # cold full-grid simulate.  Keyed by the profile digest so
            # identical requests land on one shard's single-flight.
            return LANE_WARM, f"autotune:{autotune_job_key(request.json())}"
        if endpoint == "traces":
            if request.method == "GET":
                return LANE_WARM, "traces:list"
            # uploads are admission-controlled as cold work: a flood of
            # trace uploads must never starve placement or warm
            # simulate traffic.
            name = request.query.get("name", "")
            return LANE_COLD, f"trace:{name or '<unnamed>'}"
        try:
            key = simulate_job_key(request.json())
        except BadRequestError:
            # Invalid payloads never reach a shard: answer the same
            # 400 the shard's own (shared) validator would produce.
            raise
        lane = LANE_WARM if key in self._warm else LANE_COLD
        return lane, key

    def _mark_warm(self, key: str) -> None:
        self._warm[key] = None
        self._warm.move_to_end(key)
        while len(self._warm) > self.config.warm_keys_size:
            self._warm.popitem(last=False)

    async def _proxy_endpoint(self, endpoint: str, lane: int, key: str,
                              request: _HttpRequest) -> _HttpResponse:
        shard_name = self.ring.node_for(key)
        if shard_name is None:
            self.m_no_shards.inc()
            raise ShardUnavailableError(
                "no live shards", retry_after=self.config.retry_after_s)
        await self.admission.admit(lane, shard_name)
        # From here the slot is held: release exactly once, even if
        # the proxy leg fails or the caller's deadline cancels us.
        try:
            self.m_routed.inc(shard=shard_name, lane=LANES[lane])
            response = await self._proxy(shard_name, request)
        finally:
            self.admission.release(shard_name, lane)
        if endpoint == "simulate" and response.status == 200:
            self._mark_warm(key)
        return response

    def _shard_by_name(self, name: str) -> Optional[ShardHandle]:
        for shard in self.shards:
            if shard.name == name:
                return shard
        return None

    async def _proxy(self, shard_name: str,
                     request: _HttpRequest) -> _HttpResponse:
        shard = self._shard_by_name(shard_name)
        if shard is None or not shard.up:
            raise ShardUnavailableError(
                f"shard {shard_name} is not available; retry",
                retry_after=self.config.retry_after_s)
        remaining = None
        if request.deadline is not None:
            remaining = request.deadline - time.monotonic()
            if remaining <= 0:
                raise asyncio.TimeoutError()
        body = request.body_bytes()
        lines = [f"{request.method} {request.target} HTTP/1.1",
                 f"Host: 127.0.0.1:{shard.port}",
                 "Connection: close",
                 f"Content-Length: {len(body)}"]
        for header in _FORWARD_HEADERS:
            value = request.headers.get(header)
            if value is not None:
                lines.append(f"{header}: {value}")
        if remaining is not None:
            # Shards enforce the remaining budget themselves, so an
            # abandoned proxied request stops consuming shard workers.
            lines.append(f"x-request-timeout: {remaining:.3f}")
        trace_id = (request.headers.get(
            obs_trace.TRACE_ID_HEADER.lower())
            or obs_trace.current_trace_id())
        if trace_id is not None:
            lines.append(f"{obs_trace.TRACE_ID_HEADER}: {trace_id}")
        data = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        data += body
        try:
            status, headers, body = await _raw_http(
                "127.0.0.1", shard.port, data, timeout=remaining)
        except asyncio.TimeoutError:
            raise
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            # The shard died (or was killed) with our request in
            # flight.  The work is retryable by contract — shards are
            # deterministic and results are cached — so answer a
            # retryable 503 and let the health loop confirm the death.
            self.m_proxy_failures.inc(shard=shard_name)
            shard.failures += 1
            raise ShardUnavailableError(
                f"shard {shard_name} failed mid-request; retry",
                retry_after=self.config.retry_after_s)
        out = _HttpResponse(
            status, body,
            content_type=headers.get("content-type",
                                     "application/json"))
        for header in _RETURN_HEADERS:
            if header in headers:
                out.headers["Retry-After"] = headers[header]
        if obs_trace.TRACE_ID_HEADER.lower() in headers:
            out.headers[obs_trace.TRACE_ID_HEADER] = headers[
                obs_trace.TRACE_ID_HEADER.lower()]
        return out

    # ------------------------------------------------------------------
    # /healthz
    # ------------------------------------------------------------------

    def health(self) -> dict:
        live = sum(1 for s in self.shards if s.up)
        return {
            "status": "ok" if live == len(self.shards) else (
                "degraded" if live else "down"),
            "role": ROLE_ROUTER,
            "uptime_s": round(
                time.monotonic() - self._started_monotonic, 3),
            "shard_count": len(self.shards),
            "live_shards": live,
            "shards": [s.describe() for s in self.shards],
            "ring_nodes": sorted(self.ring.nodes),
            "queued": self.admission.queued_total,
            "shedding": self.admission.shedding,
            "admission": {
                "capacity": self.admission.capacity,
                "high_watermark": self.admission.high_watermark,
                "low_watermark": self.admission.low_watermark,
                "slots_per_shard": self.admission.slots_per_shard,
            },
        }


def run_cluster(config: ServeConfig,
                ready_message: bool = True) -> None:
    """Blocking entry point for ``repro serve --shards N``.

    SIGTERM/SIGINT drain the router (in-flight proxied requests get
    ``drain_timeout_s`` to finish), then SIGTERM the shards, which run
    their own graceful drains before exiting.
    """
    app = RouterApp(config)

    async def main() -> None:
        await app.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        if ready_message:
            ports = [s.port for s in app.shards]
            log_event(
                "router.listening",
                message=(f"repro.serve router on {app.base_url} "
                         f"({len(app.shards)} shards on ports "
                         f"{ports})"),
                url=app.base_url, shards=len(app.shards),
                stream=sys.stdout)
        try:
            await stop_requested.wait()
            if ready_message:
                log_event("router.draining",
                          message="router draining...",
                          stream=sys.stdout)
        finally:
            await app.stop()
            for signum in handled:
                loop.remove_signal_handler(signum)
        if ready_message:
            log_event("router.stopped",
                      message="router and shards stopped cleanly",
                      stream=sys.stdout)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        pass


class BackgroundCluster:
    """A router + shards on a dedicated event-loop thread (tests).

    Mirrors :class:`~repro.serve.http.BackgroundServer`::

        with BackgroundCluster(ServeConfig(port=0, shards=2)) as c:
            client = ServeClient(c.base_url)
    """

    def __init__(self, config: ServeConfig) -> None:
        self.app = RouterApp(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return self.app.base_url

    def shard_url(self, index: int) -> str:
        return f"http://127.0.0.1:{self.app.shards[index].port}"

    def start(self) -> "BackgroundCluster":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=120)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise ServeError("cluster failed to start within 120s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.app.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self._ready.set()
            await self._stop_event.wait()
            await self.app.stop()

        asyncio.run(main())

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=120)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
