"""Batched windowed-service kernel shared by the event engines.

Both :class:`repro.gpu.engine.DetailedEngine` and
:class:`repro.gpu.banked.BankedEngine` replay the DRAM stream under the
same discipline: a bounded window of outstanding requests (a
completion-time min-heap popped once per access at steady state) and
per-channel FIFO service.  This module replaces their per-access Python
loops with a batched exact simulation; the engines reduce to array
precomputation (zone, channel, occupancy, latency per access) plus one
:func:`simulate_windowed` call.

The batching rests on two structural facts about the sequential replay:

* **Pops consume completions in globally sorted order.**  Every new
  completion exceeds the pop that admitted it (it adds positive
  occupancy + latency on top), and pops are non-decreasing, so the
  heap's pop sequence enumerates the completion multiset ascending.
  The request admitted at position ``i`` therefore becomes ready at
  ``max(i * compute_step, S[i - window])`` with ``S`` the sorted
  completions.
* **A batch of ``B`` pops can be settled at once** whenever the
  ``B``-th smallest pending completion does not exceed the smallest
  pending completion plus the batch's minimum (occupancy + latency):
  no completion generated inside the batch can then undercut the
  ``B`` pending values being popped, so they are exactly the next
  ``B`` pops.

Within a batch, per-channel FIFO chaining
(``finish = max(ready, channel_free) + occupancy``) is a max-plus
prefix scan, evaluated with a cumulative-sum + segmented running-max
identity over the batch sorted by channel.  The segmented running max
uses an offset trick (adding ``K * segment_id`` before a global
``maximum.accumulate``), which perturbs values by at most a few ulps
of ``K`` — well inside the 1e-9 relative tolerance the golden suite
enforces against the sequential reference.

Windows smaller than ``_MIN_BATCH_WINDOW`` batch poorly (a batch can
never exceed the window), so tiny-window runs fall back to an exact
sequential replay.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["rank_within_groups", "simulate_windowed"]

#: below this window size the batched core degenerates (a batch can
#: never exceed the window, so per-batch numpy overhead dominates);
#: replay serially instead.
_MIN_BATCH_WINDOW = 32


def rank_within_groups(groups: np.ndarray, n_groups: int) -> np.ndarray:
    """For each element, how many prior elements share its group.

    This is the vectorized form of keeping one running counter per
    group (the detailed engine's round-robin channel cursor).
    """
    groups = np.asarray(groups)
    n = groups.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    key_dtype = np.int8 if n_groups <= 1 << 7 else (
        np.int16 if n_groups <= 1 << 15 else np.int64)
    order = np.argsort(groups.astype(key_dtype), kind="stable")
    counts = np.bincount(groups, minlength=n_groups)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(starts, counts)
    return ranks


def _simulate_sequential(ready_base: np.ndarray, occupancy: np.ndarray,
                         latency: np.ndarray, channel_ids: np.ndarray,
                         n_channels: int, window: int) -> float:
    """Reference semantics, one request at a time (tiny windows)."""
    channel_free = [0.0] * n_channels
    inflight: list[float] = []
    heappush, heappop = heapq.heappush, heapq.heappop
    for ready, occ, lat, channel in zip(ready_base.tolist(),
                                        occupancy.tolist(),
                                        latency.tolist(),
                                        channel_ids.tolist()):
        while len(inflight) >= window:
            popped = heappop(inflight)
            if popped > ready:
                ready = popped
        free = channel_free[channel]
        start = ready if ready > free else free
        finish = start + occ
        channel_free[channel] = finish
        heappush(inflight, finish + lat)
    # The running-max completion is never popped (any pop consuming it
    # mints an equal-or-larger one), so the heap holds the answer.
    return max(inflight) if inflight else 0.0


def simulate_windowed(ready_base: np.ndarray, occupancy: np.ndarray,
                      latency: np.ndarray, channel_ids: np.ndarray,
                      n_channels: int, window: int) -> float:
    """Exact bounded-window / per-channel-FIFO replay; last completion.

    ``ready_base[i]`` is the earliest issue time of request ``i``
    ignoring the window (the compute throttle), ``occupancy[i]`` its
    channel transfer time, ``latency[i]`` the post-transfer latency and
    ``channel_ids[i]`` the global channel it is served by.
    """
    n = int(ready_base.size)
    if n == 0:
        return 0.0
    window = max(1, int(window))
    if window < _MIN_BATCH_WINDOW and n > window:
        return _simulate_sequential(ready_base, occupancy, latency,
                                    channel_ids, n_channels, window)

    occ_lat = occupancy + latency
    # Pairing occupancy with latency lets one fancy-index gather both.
    occ_and_lat = np.empty((2, n))
    occ_and_lat[0] = occupancy
    occ_and_lat[1] = latency
    channel_free = np.zeros(n_channels)
    pending = np.empty(0)  # sorted in-flight completion times
    pend_hi = 0.0  # pending[-1]; also bounds every channel-free level
    cf_check = 0  # batches until the next channel-idle probe
    i = 0
    batch = window
    while i < n:
        if i < window:
            # Window not yet full: no pops, the throttle alone decides.
            batch = min(window - i, n - i)
            ready = ready_base[i:i + batch]
            cf_idle = False
            n_pops = 0
        else:
            # Batch sizing.  If the batch is B, access i+k pops
            # pending[k] and completes no earlier than
            #   floor[k] = max(ready_base, pending[k],
            #                  channel_free[channel]) + occ_lat
            # (the channel-free term matters: a backlogged channel
            # cannot finish early no matter how soon the request is
            # ready).  B is valid iff min(floor[:B-1]) >= pending[B-1]:
            # then, inductively, no batch-made completion undercuts the
            # B values being popped, so they are exactly the next B
            # pops.  Prefix-min floors are non-increasing and pending
            # is sorted, so validity at B implies it at every smaller
            # size — take the largest valid B in the lookahead (capped
            # near the previous batch: lookahead work is wasted past
            # the valid size, and two doublings recover a regime
            # shift).
            look = min(window, n - i, max(64, 2 * batch))
            frontier = pending[0]
            # Scalar prechecks peel terms off the floor when they
            # provably cannot win any maximum this batch: every pop is
            # >= pending[0], so a throttle or channel-free level below
            # it is slack everywhere.
            if ready_base[i + look - 1] <= frontier:
                ready_all = pending[:look]
            else:
                ready_all = np.maximum(ready_base[i:i + look],
                                       pending[:look])
            # Assuming channels busy is always valid (the blend below
            # never changes a correct maximum), so the idle probe is
            # rationed: on saturated streams it nearly never fires, and
            # re-checking every batch would cost a reduction each.
            if cf_check == 0:
                cf_idle = channel_free.max() <= frontier
                cf_check = 0 if cf_idle else 16
            else:
                cf_idle = False
                cf_check -= 1
            if cf_idle:
                cand = ready_all + occ_lat[i:i + look]
            else:
                cand = np.maximum(
                    ready_all, channel_free[channel_ids[i:i + look]])
                cand += occ_lat[i:i + look]
            np.minimum.accumulate(cand, out=cand)
            # Non-increasing floors against non-decreasing pops make
            # the validity mask a True-prefix; its length is the
            # largest extra batch size beyond the always-valid 1.
            batch = 1 + int(np.count_nonzero(
                cand[:look - 1] >= pending[1:look]))
            ready = ready_all[:batch]
            n_pops = batch

        # Per-channel FIFO chaining over the batch, grouped by channel
        # (stable, so stream order survives within each channel).
        ch = channel_ids[i:i + batch]
        order = ch.argsort(kind="stable")
        ch_sorted = ch[order]
        pair = occ_and_lat[:, i:i + batch][:, order]
        occ_sorted = pair[0]
        total = occ_sorted.cumsum()
        # finish_k = max over j <= k in k's channel-segment of
        # (max(ready_j, free_j) - prior_j) + total_k.  Gathered channel
        # frees are only authoritative at segment starts, but at later
        # positions they are <= the start's candidate, so blending them
        # everywhere never changes the segment maximum (and when the
        # channels sit below the pop frontier they are skipped
        # entirely).
        base = ready[order]
        if not cf_idle:
            base = np.maximum(base, channel_free[ch_sorted])
        base -= total
        base += occ_sorted  # now start-candidate minus prior occupancy
        is_start = np.empty(batch, dtype=bool)
        is_start[0] = True
        np.not_equal(ch_sorted[1:], ch_sorted[:-1], out=is_start[1:])
        # Segmented running max via a K-offset global running max; K
        # need only exceed |base|.  Every start candidate is covered by
        # max(pending top, batch-end throttle): pops and channel-free
        # levels alike sit below the largest pending completion — the
        # running-max completion is never popped, since any pop that
        # consumed it would mint an even larger one — and ready_base is
        # non-decreasing.
        bound = max(pend_hi, float(ready_base[i + batch - 1]))
        shift = 2.0 * (bound + float(total[-1]) + 1.0)
        offsets = is_start.cumsum()
        offsets = offsets * shift
        base += offsets
        np.maximum.accumulate(base, out=base)
        base -= offsets
        finish = base + total
        channel_free[ch_sorted] = finish  # later writes win: FIFO tail
        completions = finish + pair[1]

        pending = np.concatenate((pending[n_pops:], completions))
        pending.sort()
        pend_hi = float(pending[-1])
        i += batch
    # The never-popped running max makes the sorted tail the answer.
    return pend_hi
