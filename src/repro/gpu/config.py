"""GPU configuration (Table 1).

The paper simulates an NVIDIA GTX-480 (Fermi)-like GPU in GPGPU-Sim,
modernized with more MSHRs and a higher clock.  :func:`table1_config`
reproduces that configuration; the dataclass keeps every knob the
engines and sweeps need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigError
from repro.core.units import KIB, LINE_SIZE


@dataclass(frozen=True)
class GpuConfig:
    """Static GPU core/cache parameters.

    The memory side (pools, channels, bandwidths, interconnect hop)
    lives in :class:`repro.memory.topology.SystemTopology`; this object
    covers the chip itself.
    """

    name: str = "GTX480-like"
    n_sms: int = 15
    clock_ghz: float = 1.4
    warp_size: int = 32
    l1_bytes_per_sm: int = 16 * KIB
    l2_bytes_per_channel: int = 128 * KIB
    mshrs_per_l2_slice: int = 128
    line_size: int = LINE_SIZE
    l1_assoc: int = 4
    l2_assoc: int = 8
    #: peak outstanding memory requests the SMs can sustain chip-wide;
    #: bounds the memory-level parallelism any workload can express.
    max_warps_outstanding: int = 48 * 15

    def __post_init__(self) -> None:
        if self.n_sms <= 0:
            raise ConfigError("n_sms must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.warp_size <= 0:
            raise ConfigError("warp_size must be positive")
        for field_name in ("l1_bytes_per_sm", "l2_bytes_per_channel",
                           "mshrs_per_l2_slice", "line_size",
                           "l1_assoc", "l2_assoc", "max_warps_outstanding"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")
        if self.l1_bytes_per_sm % (self.line_size * self.l1_assoc):
            raise ConfigError("L1 size must be a multiple of assoc*line")
        if self.l2_bytes_per_channel % (self.line_size * self.l2_assoc):
            raise ConfigError("L2 slice size must be a multiple of assoc*line")

    @property
    def l1_total_bytes(self) -> int:
        """Aggregate L1 capacity across SMs."""
        return self.l1_bytes_per_sm * self.n_sms

    def l2_total_bytes(self, n_channels: int) -> int:
        """Aggregate memory-side L2 capacity for ``n_channels``."""
        if n_channels <= 0:
            raise ConfigError("n_channels must be positive")
        return self.l2_bytes_per_channel * n_channels

    def total_mshrs(self, n_channels: int) -> int:
        """Chip-wide outstanding-miss capacity (128 per L2 slice)."""
        if n_channels <= 0:
            raise ConfigError("n_channels must be positive")
        return self.mshrs_per_l2_slice * n_channels

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.clock_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.clock_ghz

    def scaled_clock(self, factor: float) -> "GpuConfig":
        """A copy with the core clock scaled by ``factor``."""
        if factor <= 0:
            raise ConfigError("clock scale factor must be positive")
        return replace(self, clock_ghz=self.clock_ghz * factor)

    def scaled_caches(self, factor: float) -> "GpuConfig":
        """A copy with L1/L2 capacities scaled by ``factor``.

        Used when workload footprints are scaled down (see
        :data:`repro.workloads.base.FOOTPRINT_SCALE`): shrinking the
        caches by the same factor preserves the cache-to-footprint
        ratio, so miss rates and post-cache hotness match the unscaled
        system.  Sizes are rounded down to legal geometries (multiples
        of ``assoc * line_size``), never below one set.
        """
        if factor <= 0:
            raise ConfigError("cache scale factor must be positive")
        l1_quantum = self.line_size * self.l1_assoc
        l2_quantum = self.line_size * self.l2_assoc
        l1 = max(l1_quantum,
                 int(self.l1_bytes_per_sm * factor) // l1_quantum * l1_quantum)
        l2 = max(l2_quantum,
                 int(self.l2_bytes_per_channel * factor) // l2_quantum
                 * l2_quantum)
        return replace(self, l1_bytes_per_sm=l1, l2_bytes_per_channel=l2)


def table1_config() -> GpuConfig:
    """The exact simulated configuration from Table 1."""
    return GpuConfig()
