"""Epoch-based analytic performance engine.

This is the primary engine behind the paper-figure sweeps.  It applies
the Section 3.1 service model per execution epoch and in vectorized
form, so a full 19-workload x 11-ratio sweep runs in milliseconds:

* **bandwidth bound** — pools serve their epoch traffic in parallel, so
  the epoch needs ``max_z(bytes_z / bw_z)`` seconds of DRAM time.  This
  is exactly the paper's ``T = max(N*f_B/b_B, N*(1-f_B)/b_C)``.
* **latency bound** — by Little's law a workload sustaining ``P``
  outstanding requests cannot exceed ``P / avg_latency`` requests per
  second; the epoch needs at least ``accesses * avg_latency / P``.
  ``P`` is clipped by the chip's MSHR capacity (Table 1) and warp
  budget.  This term is what makes sgemm latency sensitive while the
  highly threaded workloads shrug off the 100-cycle hop (Figure 2b).
* **compute bound** — ``raw_accesses * compute_ns_per_access``; kernels
  like comd sit on this bound and show no memory sensitivity.

Epoch time is the max of the three bounds; total time sums epochs, so
phase behaviour (a latency-bound epoch followed by a bandwidth-bound
one) is preserved rather than averaged away.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig
from repro.obs import trace as obs_trace
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology


class ThroughputEngine:
    """Vectorized epoch-level performance model."""

    name = "throughput"

    def __init__(self, config: GpuConfig) -> None:
        self.config = config

    def effective_parallelism(self, chars: WorkloadCharacteristics,
                              topology: SystemTopology) -> float:
        """Outstanding requests actually sustainable on this chip."""
        n_channels = sum(zone.channels for zone in topology)
        return min(
            chars.parallelism,
            float(self.config.total_mshrs(n_channels)),
            float(self.config.max_warps_outstanding),
        )

    def run(self, trace: DramTrace, zone_map: np.ndarray,
            topology: SystemTopology,
            chars: WorkloadCharacteristics) -> SimResult:
        """Simulate one execution; see module docstring for the model."""
        with obs_trace.span("engine.throughput", cat="gpu",
                            accesses=trace.n_accesses,
                            epochs=trace.n_epochs):
            return self._simulate(trace, zone_map, topology, chars)

    def _simulate(self, trace: DramTrace, zone_map: np.ndarray,
                  topology: SystemTopology,
                  chars: WorkloadCharacteristics) -> SimResult:
        zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                     len(topology))
        n_zones = len(topology)
        n_accesses = trace.n_accesses
        if n_accesses == 0:
            raise SimulationError("empty trace")

        access_zones = zone_map[trace.page_indices].astype(np.int64)
        epoch_ids = (
            np.arange(n_accesses, dtype=np.int64) * trace.n_epochs
            // n_accesses
        )
        # counts[e, z]: DRAM accesses in epoch e served by zone z.
        counts = np.bincount(
            epoch_ids * n_zones + access_zones,
            minlength=trace.n_epochs * n_zones,
        ).reshape(trace.n_epochs, n_zones).astype(np.float64)
        # occupancy[e, z]: the same, with writes weighted by the zone
        # technology's write cost (turnaround + recovery overhead).
        write_factors = np.array([
            zone.technology.write_cost_factor for zone in topology
        ])
        weights = trace.write_weights(write_factors, access_zones)
        occupancy = np.bincount(
            epoch_ids * n_zones + access_zones,
            weights=weights,
            minlength=trace.n_epochs * n_zones,
        ).reshape(trace.n_epochs, n_zones)

        # Per-zone cost as seen from the GPU: pairwise distance-matrix
        # latency/bandwidth (equal to the per-zone scalars on legacy
        # topologies, per-pair on chiplet systems).
        bandwidths = np.array(topology.gpu_usable_bandwidths())
        latencies = np.array(topology.gpu_latencies_ns(self.config.clock_ghz))
        line = float(trace.bytes_per_access)

        # Bandwidth bound per epoch: parallel pool service (Section 3.1).
        epoch_bytes = counts * line
        t_bandwidth = ((occupancy * line)
                       / bandwidths[None, :]).max(axis=1) * 1e9

        # Latency bound per epoch: Little's law at effective parallelism.
        epoch_accesses = counts.sum(axis=1)
        parallelism = self.effective_parallelism(chars, topology)
        with np.errstate(invalid="ignore", divide="ignore"):
            fractions = np.where(
                epoch_accesses[:, None] > 0,
                counts / np.maximum(epoch_accesses, 1.0)[:, None],
                0.0,
            )
        avg_latency = (fractions * latencies[None, :]).sum(axis=1)
        t_latency = epoch_accesses * avg_latency / parallelism

        # Compute bound per epoch: raw work spread evenly across epochs.
        raw_per_epoch = trace.n_raw_accesses / trace.n_epochs
        t_compute = np.full(trace.n_epochs,
                            raw_per_epoch * chars.compute_ns_per_access)

        epoch_time = np.maximum.reduce([t_bandwidth, t_latency, t_compute])
        total_time = float(epoch_time.sum())
        if total_time <= 0:
            raise SimulationError("model produced non-positive runtime")

        return SimResult(
            engine=self.name,
            total_time_ns=total_time,
            dram_accesses=n_accesses,
            bytes_by_zone=epoch_bytes.sum(axis=0),
            time_bandwidth_ns=float(t_bandwidth.sum()),
            time_latency_ns=float(t_latency.sum()),
            time_compute_ns=float(t_compute.sum()),
        )
