"""Simulation facade tying topology, GPU config, placement and trace.

:class:`GpuSystemSimulator` is the one-stop entry point the experiment
harness and examples use: construct it with a topology and a GPU config,
then call :meth:`simulate` with a workload trace and a placement vector.
Engine selection is a string so sweeps can flip between the analytic and
event-driven engines without touching call sites.
"""

from __future__ import annotations

from typing import Literal, Optional, Union

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.banked import BankedEngine
from repro.gpu.config import GpuConfig, table1_config
from repro.gpu.engine import DetailedEngine
from repro.gpu.throughput import ThroughputEngine
from repro.gpu.trace import DramTrace, SimResult, WorkloadCharacteristics
from repro.memory.topology import SystemTopology

EngineName = Literal["throughput", "detailed", "banked"]


def make_engine(name: EngineName, config: GpuConfig
                ) -> Union[ThroughputEngine, DetailedEngine, BankedEngine]:
    """Instantiate a performance engine by name."""
    if name == "throughput":
        return ThroughputEngine(config)
    if name == "detailed":
        return DetailedEngine(config)
    if name == "banked":
        return BankedEngine(config)
    raise SimulationError(f"unknown engine {name!r}")


class GpuSystemSimulator:
    """A GPU attached to a heterogeneous memory system."""

    def __init__(self, topology: SystemTopology,
                 config: Optional[GpuConfig] = None,
                 engine: EngineName = "throughput") -> None:
        self.topology = topology
        self.config = config if config is not None else table1_config()
        self.engine = make_engine(engine, self.config)

    def simulate(self, trace: DramTrace, zone_map: np.ndarray,
                 chars: Optional[WorkloadCharacteristics] = None
                 ) -> SimResult:
        """Replay ``trace`` with pages placed per ``zone_map``.

        ``zone_map[k]`` is the zone id backing the ``k``-th footprint
        page (the output of :meth:`repro.vm.process.Process.place_all`).
        """
        if chars is None:
            chars = WorkloadCharacteristics()
        return self.engine.run(trace, zone_map, self.topology, chars)

    def peak_bandwidth(self) -> float:
        """Aggregate system bandwidth, bytes/second."""
        return self.topology.total_bandwidth

    def describe(self) -> str:
        zones = ", ".join(
            f"{zone.name}={zone.bandwidth_gbps:.0f}GB/s" for zone in self.topology
        )
        return (f"{self.config.name} on {self.topology.name} "
                f"[{zones}] via {self.engine.name} engine")
