"""Event-driven detailed performance engine.

Where :class:`repro.gpu.throughput.ThroughputEngine` applies the
Section 3.1 service model per epoch, this engine replays the DRAM access
stream request by request:

* a bounded window of outstanding requests (workload parallelism capped
  by the Table 1 MSHR file) — a request issues only when a window slot
  and an MSHR entry are free;
* per-channel FIFO service — each zone spreads requests across its
  channels, a channel transfers one line at a time at the channel's
  share of pool bandwidth;
* per-request latency — DRAM device latency plus the interconnect hop
  for remote zones, paid on top of queueing delay;
* a compute throttle — the SMs cannot feed misses faster than the
  kernel's compute intensity allows.

The engine exists to validate the analytic model: the ablation bench
(`benchmarks/test_ablation_engines.py`) checks both engines rank
placement policies identically and agree on magnitudes.  It is O(N log
P) per trace, so tests and examples use it on small traces.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology


class DetailedEngine:
    """Request-level event-driven simulation."""

    name = "detailed"

    def __init__(self, config: GpuConfig) -> None:
        self.config = config

    def run(self, trace: DramTrace, zone_map: np.ndarray,
            topology: SystemTopology,
            chars: WorkloadCharacteristics) -> SimResult:
        zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                     len(topology))
        if trace.n_accesses == 0:
            raise SimulationError("empty trace")

        n_zones = len(topology)
        n_channels_total = sum(zone.channels for zone in topology)
        window = int(min(
            chars.parallelism,
            self.config.total_mshrs(n_channels_total),
            self.config.max_warps_outstanding,
        ))
        window = max(window, 1)

        # Per-zone channel state: next time each channel is free (ns).
        channel_free = [
            np.zeros(zone.channels) for zone in topology
        ]
        channel_cursor = [0] * n_zones
        service_ns = [
            trace.bytes_per_access
            / (zone.usable_bandwidth / zone.channels) * 1e9
            for zone in topology
        ]
        latency_ns = [
            zone.latency_ns(self.config.clock_ghz) for zone in topology
        ]

        access_zones = zone_map[trace.page_indices].astype(np.int64)
        write_factors = np.array([
            zone.technology.write_cost_factor for zone in topology
        ])
        service_weights = trace.write_weights(write_factors, access_zones)

        # Compute throttle: DRAM access i corresponds (on average) to raw
        # access i / miss_rate, each costing compute_ns_per_access.
        miss_rate = max(trace.miss_rate(), 1e-12)
        compute_step = chars.compute_ns_per_access / miss_rate

        inflight: list[float] = []  # completion-time heap
        bytes_by_zone = np.zeros(n_zones)
        last_completion = 0.0

        for i in range(trace.n_accesses):
            zone_id = int(access_zones[i])
            ready = i * compute_step

            # Wait for a window slot / MSHR entry.
            while len(inflight) >= window:
                ready = max(ready, heapq.heappop(inflight))

            zone_channels = channel_free[zone_id]
            cursor = channel_cursor[zone_id] % zone_channels.size
            channel_cursor[zone_id] += 1
            start = max(ready, zone_channels[cursor])
            finish_transfer = start + (service_ns[zone_id]
                                       * service_weights[i])
            zone_channels[cursor] = finish_transfer
            completion = finish_transfer + latency_ns[zone_id]

            heapq.heappush(inflight, completion)
            bytes_by_zone[zone_id] += trace.bytes_per_access
            last_completion = max(last_completion, completion)

        total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
        total_time = max(last_completion, total_compute)
        if total_time <= 0:
            raise SimulationError("detailed engine produced zero runtime")

        busy_by_zone = np.array([
            float(channel_free[z].sum()) for z in range(n_zones)
        ])
        return SimResult(
            engine=self.name,
            total_time_ns=total_time,
            dram_accesses=trace.n_accesses,
            bytes_by_zone=bytes_by_zone,
            time_bandwidth_ns=float(busy_by_zone.max()),
            time_latency_ns=float(sum(latency_ns) / n_zones),
            time_compute_ns=total_compute,
        )
