"""Event-driven detailed performance engine.

Where :class:`repro.gpu.throughput.ThroughputEngine` applies the
Section 3.1 service model per epoch, this engine replays the DRAM access
stream request by request:

* a bounded window of outstanding requests (workload parallelism capped
  by the Table 1 MSHR file) — a request issues only when a window slot
  and an MSHR entry are free;
* per-channel FIFO service — each zone spreads requests across its
  channels round-robin, a channel transfers one line at a time at the
  channel's share of pool bandwidth;
* per-request latency — DRAM device latency plus the interconnect hop
  for remote zones, paid on top of queueing delay;
* a compute throttle — the SMs cannot feed misses faster than the
  kernel's compute intensity allows.

The replay itself runs through the batched array kernel in
:mod:`repro.gpu.service`: this module only precomputes the per-access
zone / channel / occupancy / latency arrays and reduces the result.
The original per-access heap loop survives as
:func:`repro.gpu._reference.reference_detailed_run`, which the golden
suite holds this engine to at 1e-9 relative.

The engine exists to validate the analytic model: the ablation bench
(`benchmarks/test_ablation_engines.py`) checks both engines rank
placement policies identically and agree on magnitudes.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig
from repro.obs import trace as obs_trace
from repro.gpu.service import rank_within_groups, simulate_windowed
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology


class DetailedEngine:
    """Request-level event-driven simulation."""

    name = "detailed"

    def __init__(self, config: GpuConfig) -> None:
        self.config = config

    def run(self, trace: DramTrace, zone_map: np.ndarray,
            topology: SystemTopology,
            chars: WorkloadCharacteristics) -> SimResult:
        with obs_trace.span("engine.detailed", cat="gpu",
                            accesses=trace.n_accesses):
            return self._simulate(trace, zone_map, topology, chars)

    def _simulate(self, trace: DramTrace, zone_map: np.ndarray,
                  topology: SystemTopology,
                  chars: WorkloadCharacteristics) -> SimResult:
        zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                     len(topology))
        if trace.n_accesses == 0:
            raise SimulationError("empty trace")

        n_zones = len(topology)
        zone_channels = np.array([zone.channels for zone in topology],
                                 dtype=np.int64)
        n_channels_total = int(zone_channels.sum())
        window = int(min(
            chars.parallelism,
            self.config.total_mshrs(n_channels_total),
            self.config.max_warps_outstanding,
        ))
        window = max(window, 1)

        # Per-zone cost from the GPU's viewpoint via the distance
        # matrix; equals the per-zone scalars on legacy topologies.
        usable_bw = topology.gpu_usable_bandwidths()
        service_ns = np.array([
            trace.bytes_per_access
            / (usable_bw[zone.zone_id] / zone.channels) * 1e9
            for zone in topology
        ])
        latency_ns = np.array(
            topology.gpu_latencies_ns(self.config.clock_ghz)
        )

        access_zones = zone_map[trace.page_indices].astype(np.int64)
        write_factors = np.array([
            zone.technology.write_cost_factor for zone in topology
        ])
        service_weights = trace.write_weights(write_factors, access_zones)

        # Compute throttle: DRAM access i corresponds (on average) to raw
        # access i / miss_rate, each costing compute_ns_per_access.
        miss_rate = max(trace.miss_rate(), 1e-12)
        compute_step = chars.compute_ns_per_access / miss_rate

        # Requests spread over a zone's channels round-robin: the k-th
        # access to a zone lands on channel k mod that zone's count.
        zone_offset = np.concatenate(([0], np.cumsum(zone_channels)[:-1]))
        ranks = rank_within_groups(access_zones, n_zones)
        channel_ids = (zone_offset[access_zones]
                       + ranks % zone_channels[access_zones]
                       ).astype(np.int16)

        n = trace.n_accesses
        occupancy = service_ns[access_zones] * service_weights
        latency = latency_ns[access_zones]
        ready_base = np.arange(n, dtype=np.float64) * compute_step
        last_completion = simulate_windowed(ready_base, occupancy,
                                            latency, channel_ids,
                                            n_channels_total, window)

        total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
        total_time = max(last_completion, total_compute)
        if total_time <= 0:
            raise SimulationError("detailed engine produced zero runtime")

        # Busy time per channel — transfer occupancy actually served,
        # not the last-free timestamp, so dominant_bound() can trust it.
        busy = np.bincount(channel_ids, weights=occupancy,
                           minlength=n_channels_total)
        bytes_by_zone = (np.bincount(access_zones, minlength=n_zones)
                         * float(trace.bytes_per_access))
        return SimResult(
            engine=self.name,
            total_time_ns=total_time,
            dram_accesses=trace.n_accesses,
            bytes_by_zone=bytes_by_zone,
            time_bandwidth_ns=float(busy.max()),
            time_latency_ns=float(latency_ns.sum() / n_zones),
            time_compute_ns=total_compute,
        )
