"""Vectorized set-associative LRU simulation (Mattson stack kernel).

The cache hierarchy's per-access OrderedDict loop is replaced by an
offline computation built on the classic LRU stack property: an access
hits an ``A``-way LRU set iff fewer than ``A`` *distinct* lines were
touched in that set since the previous access to the same line.  All
logic is integer array arithmetic, so the result is bit-identical to
the sequential replay while running at NumPy speed.

The stream is first sorted (stably) by set id so each set's
subsequence is a contiguous segment, then for every access ``k`` (in
segment coordinates) three facts decide hit or miss, with ``prev[k]``
the previous position touching the same (set, line) or -1:

* ``prev[k] < 0`` — first touch, always a miss;
* the reuse window ``(prev[k], k)`` holds fewer than ``A`` accesses —
  unconditional hit (distinct lines cannot exceed accesses);
* otherwise the number of *distinct* lines in the window decides, and
  distinct lines are exactly the window's "first occurrences": the
  positions ``j`` with ``prev[j] <= prev[k]``.  Any two such positions
  hold different lines (if they matched, the later one's ``prev``
  would point inside the window), so scanning the window forward and
  counting first occurrences can stop as soon as ``A`` are seen.

The window scan runs in two vectorized stages.  Stage one probes the
first ``assoc`` window positions of every undecided access with
unrolled 1-D gathers — by construction all in-window, so no bounds
masks — which settles nearly everything on GPU streams: streaming
accesses meet ``assoc`` fresh lines immediately, reuse-heavy accesses
have short windows.  Stage two walks the leftovers' windows in
doubling batched chunks until each is decided.  A pathological stream
that keeps scanning falls back to :func:`_count_prev_greater`, an
exact merge-sort inversion counter (each level one batch of NumPy
calls via a composite-key ``searchsorted``), bounding worst-case work
at O(n log^2 n).

Sorts avoid NumPy's comparison-based stable path for wide integers:
every grouping sort here only needs equal keys adjacent in stable
order — not ascending key order — so keys are truncated into 8/16-bit
digits (a bijective remap whenever they span fewer values than the
digit type holds) and sorted with the radix kernel NumPy reserves for
narrow integers, LSD-style across two digits for (set, line) pairs.
That is ~10x faster than a stable ``int64`` argsort at these sizes.

Warm caches are handled by prepending each set's resident lines (LRU
to MRU) as virtual accesses, which reconstructs the exact LRU state a
sequential replay would start from; :func:`lru_final_state` recovers
the residents left behind, so callers can round-trip cache state
through the kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["lru_filter", "lru_final_state"]

#: largest single-round probe chunk (window positions per access).
_MAX_CHUNK = 4096

#: shared iota buffer for window arithmetic (grown on demand; arange
#: allocation is measurable at stream sizes).
_IOTA = np.empty(0, dtype=np.int32)


def _iota(n: int) -> np.ndarray:
    """A read-only view of ``arange(n, dtype=int32)``."""
    global _IOTA
    if _IOTA.size < n:
        _IOTA = np.arange(max(n, 2 * _IOTA.size), dtype=np.int32)
    return _IOTA[:n]


def _count_prev_greater(values: np.ndarray) -> np.ndarray:
    """For each k: ``#{j < k : values[j] > values[k]}``.

    Bottom-up merge counting: at each level the stream splits into
    left/right half-blocks; every right-half element counts the
    left-half elements greater than it via one ``searchsorted`` over
    per-block sorted values, made globally monotone with a per-block
    composite offset.  All blocks of a level are handled in one batch
    of array ops.
    """
    n = int(values.size)
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    size = 1 << (n - 1).bit_length()
    # Pad with a sentinel below the real minimum so pads never count
    # as "greater"; shift non-negative for the composite keys.
    low = int(values.min())
    padded = np.full(size, low - 1, dtype=np.int64)
    padded[:n] = values
    padded -= low - 1  # pads become 0, real values >= 1
    padded_counts = np.zeros(size, dtype=np.int64)
    span = int(padded.max()) + 1

    half = 1
    while half < size:
        width = 2 * half
        n_blocks = size // width
        blocks = padded.reshape(n_blocks, width)
        left = np.sort(blocks[:, :half], axis=1)
        queries = blocks[:, half:]
        offsets = np.arange(n_blocks, dtype=np.int64) * span
        flat_left = (left + offsets[:, None]).ravel()
        flat_queries = (queries + offsets[:, None]).ravel()
        n_le = np.searchsorted(flat_left, flat_queries, side="right")
        n_le -= np.repeat(np.arange(n_blocks, dtype=np.int64) * half,
                          half)
        padded_counts.reshape(n_blocks, width)[:, half:] += (
            (half - n_le).reshape(n_blocks, half)
        )
        half = width
    return padded_counts[:n]


def _stable_argsort_small(keys: np.ndarray) -> np.ndarray:
    """Stable grouping argsort of non-negative keys.

    NumPy's ``kind="stable"`` is a radix sort only for <=16-bit
    integers; wider integers get comparison-based timsort, an order of
    magnitude slower here.  Callers only rely on equal keys ending up
    adjacent in stable (original) order, so a truncating cast is
    enough: it remaps keys bijectively whenever they span fewer values
    than the digit type holds.
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if keys.dtype.itemsize <= 2:  # already on the radix path
        return np.argsort(keys, kind="stable")
    top = int(keys.max())
    if top < 1 << 8:
        return np.argsort(keys.astype(np.int8), kind="stable")
    if top < 1 << 16:
        return np.argsort(keys.astype(np.int16), kind="stable")
    return np.argsort(keys, kind="stable")


def _group_line_digits(seg_groups: Optional[np.ndarray],
                       seg_lines: np.ndarray,
                       n_groups: int, line_top: int
                       ) -> Optional[tuple[np.ndarray,
                                           Optional[np.ndarray]]]:
    """(group, line) keys as two 16-bit LSD radix digits, if they fit.

    The low digit is the truncated line; the high digit packs (group,
    upper line bits).  ``seg_groups=None`` declares the group a pure
    function of the line (cache slices indexed by address), dropping
    it from the key entirely.  Truncation scrambles digit order but
    keeps the mapping injective, which is all grouping sorts need.

    A ``None`` high digit means it would be constant (one effective
    group, 16-bit lines) — the common memory-side-L2 shape — so the
    caller can skip the second radix pass outright.
    """
    hi_span = (line_top >> 16) + 1
    if seg_groups is None:
        n_groups = 1
    if n_groups * hi_span > 1 << 16:
        return None
    low = seg_lines.astype(np.int16)
    if n_groups * hi_span == 1:
        return low, None
    # The radix kernel is ~2x faster again on 8-bit keys.
    hi_dtype = np.int8 if n_groups * hi_span <= 1 << 8 else np.int16
    if hi_span == 1:  # 16-bit lines: the group alone is the high digit
        return low, seg_groups.astype(hi_dtype, copy=False)
    high = (seg_lines >> 16).astype(np.int32)
    if seg_groups is not None and n_groups > 1:
        high += seg_groups * np.int32(hi_span)
    return low, high.astype(hi_dtype)


def _previous_occurrence(seg_groups: Optional[np.ndarray],
                         seg_lines: np.ndarray,
                         n_groups: int, line_top: int) -> np.ndarray:
    """Previous position touching the same (group, line), else -1.

    Positions index the group-sorted stream, so equal pairs are
    adjacent after one stable grouping sort on the (group, line) key;
    adjacency is detected on the same digits the sort ran on
    (injective, so digit equality is pair equality).  ``seg_groups``
    may be None when the group is a pure function of the line.
    """
    n = seg_lines.size
    prev = np.full(n, -1, dtype=np.int32)
    if n < 2:
        return prev
    digits = _group_line_digits(seg_groups, seg_lines, n_groups,
                                line_top)
    if digits is None:  # digit overflow: rare wide-key fallback
        key = seg_lines.astype(np.int64)
        if seg_groups is not None:
            key = key + seg_groups.astype(np.int64) * (line_top + 1)
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        same = sorted_key[1:] == sorted_key[:-1]
    else:
        low, high = digits
        order = np.argsort(low, kind="stable")
        if high is None:  # constant high digit: low alone is the key
            low_s = low[order]
            same = low_s[1:] == low_s[:-1]
        else:
            order = order[np.argsort(high[order], kind="stable")]
            low_s = low[order]
            high_s = high[order]
            same = low_s[1:] == low_s[:-1]
            np.logical_and(same, high_s[1:] == high_s[:-1], out=same)
    # Scatter every predecessor, then repair the run heads: the heads
    # are one per distinct key, far fewer than the retouches on cached
    # streams, so the fix-up compaction beats a full-width blend.
    prev[order[1:]] = order[:-1]
    heads = np.nonzero(~same)[0]
    prev[order[heads + 1]] = -1
    prev[order[0]] = -1
    return prev


def _probe_windows(prev: np.ndarray, window: np.ndarray, assoc: int,
                   queries: np.ndarray, volume_cap: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Decide hit/miss for ``queries`` by scanning their reuse windows.

    Counts window-firsts — positions whose own reuse distance reaches
    back to the window start (``prev[j] <= window start``) — stopping
    per query at ``assoc`` (miss) or window end (hit iff fewer).

    Stage one probes windows in blocks of ``assoc`` positions with
    unrolled 1-D gathers, compacting the still-open set after each
    block: every queried window covers the first block (no bounds
    masks), and a fully-fresh first block — the common streaming case
    — is already a decided miss.  Stage two walks whatever survives
    four blocks in doubling 2-D chunks.

    Returns ``(hit, undecided)`` aligned with ``queries``; entries
    still undecided when the gathered-volume budget runs out are left
    for the caller's exact fallback counter.
    """
    m = queries.size
    hit = np.zeros(m, dtype=bool)
    undecided = np.zeros(m, dtype=bool)
    if m == 0:
        return hit, undecided
    n = prev.size
    open_idx = np.arange(m, dtype=np.int64)
    # Window starts stay intp so gathers skip index conversion; probe
    # position start+d is reached by gathering start from the shifted
    # view prev[d:], so the hot loop never touches an index array.
    p = prev[queries].astype(np.int64)
    w = window[queries]
    n_blocks = 4
    # Stage one counts at most n_blocks*assoc firsts; a byte counter
    # keeps the read-modify-write traffic minimal.
    cnt_dtype = np.int8 if n_blocks * assoc < 127 else np.int32
    found = np.zeros(m, dtype=cnt_dtype)
    gathered = np.empty(m, dtype=np.int32)
    first = np.empty(m, dtype=bool)
    in_window = np.empty(m, dtype=bool)
    depth = 0
    for block in range(n_blocks):
        for _ in range(assoc):
            depth += 1
            # min() keeps the view non-empty for tiny streams, where
            # late probes are all out-of-window (and masked) anyway.
            np.take(prev[min(depth, n - 1):], p, out=gathered,
                    mode="clip")
            np.less_equal(gathered, p, out=first)
            if block:  # first block is always fully in-window
                np.greater_equal(w, depth, out=in_window)
                np.logical_and(first, in_window, out=first)
            np.add(found, first, out=found, casting="unsafe")
        missed = found >= assoc
        exhausted = w <= depth
        hit[open_idx[exhausted & ~missed]] = True
        keep = np.nonzero(~(missed | exhausted))[0]
        if not keep.size:
            return hit, undecided
        open_idx = open_idx[keep]
        p = p[keep]
        w = w[keep]
        found = found[keep]
        gathered = np.empty(open_idx.size, dtype=np.int32)
        first = np.empty(open_idx.size, dtype=bool)
        in_window = np.empty(open_idx.size, dtype=bool)

    # Stage two: doubling chunks over the still-open windows.
    # ``open_idx`` indexes the original query array throughout, so the
    # survivors' stream positions are one gather away.
    qpos = queries[open_idx]
    found = found.astype(np.int32)  # chunk sums overflow a byte
    scan = p + depth  # last scanned window position
    active = np.arange(open_idx.size, dtype=np.int64)
    chunk = max(16, 2 * assoc)
    volume = 0
    while active.size:
        volume += active.size * chunk
        if volume > volume_cap:
            undecided[open_idx[active]] = True
            break
        cols = scan[active, None] + np.arange(1, chunk + 1,
                                              dtype=np.int64)
        within = cols < qpos[active, None]
        firsts = np.take(prev, cols, mode="clip") <= p[active, None]
        np.logical_and(firsts, within, out=firsts)
        found[active] += firsts.sum(axis=1, dtype=np.int32)
        scan[active] += chunk
        now_found = found[active]
        done_miss = now_found >= assoc
        done_all = scan[active] + 1 >= qpos[active]
        hit[open_idx[active[done_all & ~done_miss]]] = True
        active = active[~(done_miss | done_all)]
        chunk = min(2 * chunk, _MAX_CHUNK)
    return hit, undecided


def lru_filter(set_ids: np.ndarray, lines: np.ndarray, assoc: int,
               warm_set_ids: Optional[np.ndarray] = None,
               warm_lines: Optional[np.ndarray] = None,
               line_keyed: bool = False,
               probe_volume_cap: Optional[int] = None,
               n_groups: Optional[int] = None,
               line_top: Optional[int] = None,
               ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Replay a line stream through independent A-way LRU sets.

    ``set_ids``/``lines`` describe the stream in access order; each
    access touches LRU set ``set_ids[k]`` with line ``lines[k]``.
    ``warm_set_ids``/``warm_lines`` optionally carry pre-existing
    residents, ordered LRU to MRU within each set; they are replayed
    as virtual warm-up accesses so the stream starts from exactly that
    state.  ``line_keyed=True`` asserts the set id is a pure function
    of the line address (address-sliced caches), which lets the reuse
    analysis key on lines alone.  ``n_groups``/``line_top`` are
    optional caller-known *upper* bounds on the key universe (any
    overestimate is valid — they only size radix digits), saving two
    stream-wide reductions; they are ignored when warm residents are
    present, whose keys the caller's bounds may not cover.

    Returns ``(hits, chain)``: a boolean hit flag per (real) access in
    input order, plus the set-sorted ``(set_ids, lines)`` stream — the
    input :func:`lru_final_state` needs to reconstruct cache contents,
    returned so callers can defer that cost until state is observed.
    """
    set_ids = np.asarray(set_ids)
    lines = np.asarray(lines)
    n_warm = 0
    if warm_set_ids is not None and np.asarray(warm_set_ids).size:
        n_warm = int(np.asarray(warm_set_ids).size)
        set_ids = np.concatenate([warm_set_ids, set_ids])
        lines = np.concatenate([warm_lines, lines])
    n = set_ids.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=bool), (empty, empty)

    if n_warm or n_groups is None:
        n_groups = int(set_ids.max()) + 1
    if n_warm or line_top is None:
        line_top = int(lines.max())

    # Contiguous per-set segments; the stable sort keeps access order
    # (and the warm prefix first) within each set.
    order = _stable_argsort_small(set_ids)
    seg_sets = set_ids[order]  # native dtype; consumers widen lazily
    line_dtype = np.int32 if line_top < 2 ** 31 else np.int64
    seg_lines = lines[order].astype(line_dtype, copy=False)

    prev = _previous_occurrence(None if line_keyed else seg_sets,
                                seg_lines, n_groups, line_top)
    window = _iota(n) - prev
    window -= 1
    touched = prev >= 0
    # Long-window retouches need a distinct-count probe; the remaining
    # touched accesses hit outright (window shorter than the ways).
    long_win = window >= assoc
    long_win &= touched
    seg_hits = touched ^ long_win  # short window: certain hit

    queries = np.nonzero(long_win)[0]  # touched, long window
    if queries.size:
        cap = (probe_volume_cap if probe_volume_cap is not None
               else 64 * n)
        probe_hit, undecided = _probe_windows(prev, window, assoc,
                                              queries, cap)
        seg_hits[queries[probe_hit]] = True
        if undecided.any():
            # Exact fallback: distinct = window - repeats, with
            # repeats an inversion count on `prev` over retouching
            # accesses only (first touches neither repeat nor outrank
            # any window start).
            valid = np.nonzero(touched)[0]
            repeats = np.zeros(n, dtype=np.int64)
            repeats[valid] = _count_prev_greater(
                prev[valid].astype(np.int64))
            rest = queries[undecided]
            seg_hits[rest] = (window[rest] - repeats[rest]) < assoc

    hits = np.empty(n, dtype=bool)
    hits[order] = seg_hits
    return hits[n_warm:], (seg_sets, seg_lines)


def lru_final_state(seg_sets: np.ndarray, seg_lines: np.ndarray,
                    assoc: int) -> tuple[np.ndarray, np.ndarray]:
    """Resident lines after replaying a set-sorted stream.

    Takes the ``chain`` returned by :func:`lru_filter` and yields
    ``(set_ids, lines)`` of every final resident, ordered LRU to MRU
    within each set: for each set, the last ``assoc`` distinct lines
    by ascending last-touch position.
    """
    n = seg_sets.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    seg_sets = np.asarray(seg_sets, dtype=np.int64)
    seg_lines = np.asarray(seg_lines, dtype=np.int64)
    n_groups = int(seg_sets.max()) + 1
    line_top = int(seg_lines.max())
    digits = _group_line_digits(seg_sets, seg_lines, n_groups,
                                line_top)
    if digits is None:
        key = seg_sets * (line_top + 1) + seg_lines
        korder = np.argsort(key, kind="stable")
        same = key[korder][1:] == key[korder][:-1]
    else:
        low, high = digits
        korder = np.argsort(low, kind="stable")
        if high is None:
            low_s = low[korder]
            same = low_s[1:] == low_s[:-1]
        else:
            korder = korder[np.argsort(high[korder], kind="stable")]
            low_s = low[korder]
            high_s = high[korder]
            same = low_s[1:] == low_s[:-1]
            np.logical_and(same, high_s[1:] == high_s[:-1], out=same)
    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = ~same
    last_idx = korder[is_last]  # one position per distinct (set, line)
    last_idx = np.sort(last_idx)  # ascending position; sets contiguous
    touch_sets = seg_sets[last_idx]
    touch_lines = seg_lines[last_idx]
    run_end = np.ones(touch_sets.size, dtype=bool)
    run_end[:-1] = touch_sets[1:] != touch_sets[:-1]
    ends = np.nonzero(run_end)[0]
    run_id = np.concatenate(
        [[0], np.cumsum(run_end[:-1])]).astype(np.int64)
    keep = (ends[run_id] - np.arange(touch_sets.size)) < assoc
    return touch_sets[keep], touch_lines[keep]
