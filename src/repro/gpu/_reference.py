"""Reference (per-access loop) implementations of the hot paths.

These are the original pure-Python simulation loops that
:mod:`repro.gpu.cache`, :mod:`repro.gpu.engine` and
:mod:`repro.gpu.banked` replaced with vectorized kernels.  They are kept
as the behavioural oracle:

* the golden equality suite (``tests/test_golden_vectorized.py``)
  checks the vectorized cache filter is *bit-identical* to
  :class:`ReferenceCacheHierarchy` and the vectorized engines reproduce
  the reference :class:`~repro.gpu.trace.SimResult` fields to 1e-9
  relative;
* the perf harness (``repro bench``) times them next to the vectorized
  kernels so every ``BENCH_*.json`` records the measured speedup.

The only intentional divergence from the seed code is the
``time_bandwidth_ns`` accounting fix (see the engine modules): both the
reference and the vectorized engines accumulate per-channel *busy time*
(sum of transfer occupancies) instead of summing per-channel last-free
timestamps, so ``SimResult.dominant_bound()`` is trustworthy.  Every
other quantity follows the seed loops operation for operation.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology


class _ReferenceSetAssocCache:
    """Verbatim port of the seed ``SetAssocCache`` per-access loop.

    Kept operation for operation (OrderedDict membership +
    ``move_to_end`` + ``popitem``, per-access :class:`CacheStats`
    attribute increments through ``self.stats``) so timing it is an
    honest measurement of what the vectorized kernel replaced.
    """

    def __init__(self, size_bytes: int, line_size: int, assoc: int) -> None:
        from repro.gpu.cache import CacheStats

        n_lines = size_bytes // line_size
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        index = line_addr % self.n_sets
        cache_set = self._sets[index]
        self.stats.accesses += 1
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[line_addr] = None
        return False


class ReferenceCacheHierarchy:
    """Per-access OrderedDict replay of the Table 1 cache hierarchy."""

    def __init__(self, config: GpuConfig, n_channels: int) -> None:
        self.config = config
        self.n_channels = n_channels
        self._l1s = [
            _ReferenceSetAssocCache(config.l1_bytes_per_sm,
                                    config.line_size, config.l1_assoc)
            for _ in range(config.n_sms)
        ]
        self._l2s = [
            _ReferenceSetAssocCache(config.l2_bytes_per_channel,
                                    config.line_size, config.l2_assoc)
            for _ in range(n_channels)
        ]

    def access(self, line_addr: int, sm: int) -> bool:
        """One access from SM ``sm``; True if served on chip."""
        if self._l1s[sm % len(self._l1s)].access(line_addr):
            return True
        slice_index = line_addr % self.n_channels
        return self._l2s[slice_index].access(line_addr)

    def filter_stream_indices(self, line_addrs: np.ndarray) -> np.ndarray:
        """Positions of accesses that miss both cache levels."""
        misses = []
        append = misses.append
        n_sms = len(self._l1s)
        for position, line_addr in enumerate(line_addrs.tolist()):
            if not self.access(line_addr, position % n_sms):
                append(position)
        return np.asarray(misses, dtype=np.int64)

    def l1_stats(self):
        from repro.gpu.cache import CacheStats

        total = CacheStats()
        for cache in self._l1s:
            total = total.merge(cache.stats)
        return total

    def l2_stats(self):
        from repro.gpu.cache import CacheStats

        total = CacheStats()
        for cache in self._l2s:
            total = total.merge(cache.stats)
        return total


def reference_detailed_run(config: GpuConfig, trace: DramTrace,
                           zone_map: np.ndarray,
                           topology: SystemTopology,
                           chars: WorkloadCharacteristics) -> SimResult:
    """The seed :class:`DetailedEngine` request loop."""
    zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                 len(topology))
    if trace.n_accesses == 0:
        raise SimulationError("empty trace")

    n_zones = len(topology)
    n_channels_total = sum(zone.channels for zone in topology)
    window = max(1, int(min(
        chars.parallelism,
        config.total_mshrs(n_channels_total),
        config.max_warps_outstanding,
    )))

    channel_free = [np.zeros(zone.channels) for zone in topology]
    channel_busy = [np.zeros(zone.channels) for zone in topology]
    channel_cursor = [0] * n_zones
    usable_bw = topology.gpu_usable_bandwidths()
    service_ns = [
        trace.bytes_per_access
        / (usable_bw[zone.zone_id] / zone.channels) * 1e9
        for zone in topology
    ]
    latency_ns = list(topology.gpu_latencies_ns(config.clock_ghz))

    access_zones = zone_map[trace.page_indices].astype(np.int64)
    write_factors = np.array([
        zone.technology.write_cost_factor for zone in topology
    ])
    service_weights = trace.write_weights(write_factors, access_zones)

    miss_rate = max(trace.miss_rate(), 1e-12)
    compute_step = chars.compute_ns_per_access / miss_rate

    inflight: list[float] = []
    bytes_by_zone = np.zeros(n_zones)
    last_completion = 0.0

    for i in range(trace.n_accesses):
        zone_id = int(access_zones[i])
        ready = i * compute_step
        while len(inflight) >= window:
            ready = max(ready, heapq.heappop(inflight))

        zone_channels = channel_free[zone_id]
        cursor = channel_cursor[zone_id] % zone_channels.size
        channel_cursor[zone_id] += 1
        occupancy = service_ns[zone_id] * service_weights[i]
        start = max(ready, zone_channels[cursor])
        finish_transfer = start + occupancy
        zone_channels[cursor] = finish_transfer
        channel_busy[zone_id][cursor] += occupancy
        completion = finish_transfer + latency_ns[zone_id]

        heapq.heappush(inflight, completion)
        bytes_by_zone[zone_id] += trace.bytes_per_access
        last_completion = max(last_completion, completion)

    total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
    total_time = max(last_completion, total_compute)
    if total_time <= 0:
        raise SimulationError("detailed engine produced zero runtime")

    busiest = max(float(busy.max()) for busy in channel_busy)
    return SimResult(
        engine="detailed",
        total_time_ns=total_time,
        dram_accesses=trace.n_accesses,
        bytes_by_zone=bytes_by_zone,
        time_bandwidth_ns=busiest,
        time_latency_ns=float(sum(latency_ns) / n_zones),
        time_compute_ns=total_compute,
    )


def reference_banked_run(config: GpuConfig, trace: DramTrace,
                         zone_map: np.ndarray,
                         topology: SystemTopology,
                         chars: WorkloadCharacteristics,
                         banks_per_channel: int = 16,
                         bank_overlap: int = 4) -> SimResult:
    """The seed :class:`BankedEngine` request loop."""
    from repro.gpu.banked import LINES_PER_PAGE, LINES_PER_ROW, BankState

    zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                 len(topology))
    if trace.n_accesses == 0:
        raise SimulationError("empty trace")

    n_zones = len(topology)
    n_channels_total = sum(zone.channels for zone in topology)
    window = max(1, int(min(
        chars.parallelism,
        config.total_mshrs(n_channels_total),
        config.max_warps_outstanding,
    )))

    channel_free = [np.zeros(zone.channels) for zone in topology]
    channel_busy = [np.zeros(zone.channels) for zone in topology]
    banks = [
        [BankState(banks_per_channel) for _ in range(zone.channels)]
        for zone in topology
    ]
    usable_bw = topology.gpu_usable_bandwidths()
    burst_ns = [
        trace.bytes_per_access
        / (usable_bw[zone.zone_id] / zone.channels) * 1e9
        for zone in topology
    ]
    miss_extra_ns = [
        (zone.technology.timings.row_miss_cycles()
         - zone.technology.timings.row_hit_cycles())
        * zone.technology.timings.cycle_ns / bank_overlap
        for zone in topology
    ]
    latency_ns = list(topology.gpu_latencies_ns(config.clock_ghz))

    access_zones = zone_map[trace.page_indices].astype(np.int64)
    write_factors = np.array([
        zone.technology.write_cost_factor for zone in topology
    ])
    service_weights = trace.write_weights(write_factors, access_zones)
    pages = trace.page_indices
    miss_rate = max(trace.miss_rate(), 1e-12)
    compute_step = chars.compute_ns_per_access / miss_rate

    inflight: list[float] = []
    bytes_by_zone = np.zeros(n_zones)
    last_completion = 0.0

    for i in range(trace.n_accesses):
        zone_id = int(access_zones[i])
        ready = i * compute_step
        while len(inflight) >= window:
            ready = max(ready, heapq.heappop(inflight))

        zone_channels = channel_free[zone_id]
        line = int(pages[i]) * LINES_PER_PAGE + (i % LINES_PER_PAGE)
        channel = line % zone_channels.size
        row = (line // zone_channels.size) // LINES_PER_ROW
        row_hit = banks[zone_id][channel].access(row)

        occupancy = burst_ns[zone_id] * service_weights[i] + (
            0.0 if row_hit else miss_extra_ns[zone_id]
        )
        start = max(ready, zone_channels[channel])
        finish = start + occupancy
        zone_channels[channel] = finish
        channel_busy[zone_id][channel] += occupancy
        completion = finish + latency_ns[zone_id]

        heapq.heappush(inflight, completion)
        bytes_by_zone[zone_id] += trace.bytes_per_access
        last_completion = max(last_completion, completion)

    total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
    total_time = max(last_completion, total_compute)
    if total_time <= 0:
        raise SimulationError("banked engine produced zero runtime")

    busiest = max(float(busy.max()) for busy in channel_busy)
    return SimResult(
        engine="banked",
        total_time_ns=total_time,
        dram_accesses=trace.n_accesses,
        bytes_by_zone=bytes_by_zone,
        time_bandwidth_ns=busiest,
        time_latency_ns=float(sum(latency_ns) / n_zones),
        time_compute_ns=total_compute,
    )


def reference_row_hit_rates(trace: DramTrace, zone_map: np.ndarray,
                            topology: SystemTopology,
                            banks_per_channel: int = 16
                            ) -> tuple[float, ...]:
    """The seed per-access ``BankedEngine.row_hit_rates`` loop."""
    from repro.gpu.banked import LINES_PER_PAGE, LINES_PER_ROW, BankState

    zone_map = np.asarray(zone_map)
    n_channels = [zone.channels for zone in topology]
    banks = [
        [BankState(banks_per_channel) for _ in range(count)]
        for count in n_channels
    ]
    access_zones = zone_map[trace.page_indices].astype(np.int64)
    for i in range(trace.n_accesses):
        zone_id = int(access_zones[i])
        line = (int(trace.page_indices[i]) * LINES_PER_PAGE
                + (i % LINES_PER_PAGE))
        channel = line % n_channels[zone_id]
        row = (line // n_channels[zone_id]) // LINES_PER_ROW
        banks[zone_id][channel].access(row)
    rates = []
    for zone_banks in banks:
        hits = sum(bank.row_hits for bank in zone_banks)
        total = hits + sum(bank.row_misses for bank in zone_banks)
        rates.append(hits / total if total else 0.0)
    return tuple(rates)
