"""Trace schema shared by workload generators and simulation engines.

A :class:`DramTrace` is the post-cache (DRAM-level) memory access stream
of one workload execution, expressed over *footprint page indices*:
page ``k`` is the ``k``-th 4 kB page of the program footprint in
allocation order, the same ordering as the placement vector produced by
:meth:`repro.vm.process.Process.place_all`.  Keeping traces in footprint
coordinates makes them placement-independent: one trace can be replayed
under every policy, which is how the paper's two-phase oracle works.

:class:`WorkloadCharacteristics` carries the per-workload execution
parameters the performance model needs beyond the address stream:
sustainable memory-level parallelism and compute intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import SimulationError, WorkloadError
from repro.core.units import LINE_SIZE


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Execution characteristics that shape the performance model.

    ``parallelism``
        Average outstanding memory requests the workload sustains.
        Highly threaded streaming kernels keep hundreds of requests in
        flight and hide any latency (Figure 2b); kernels with dependent
        accesses and high reuse (sgemm) sustain few and become latency
        sensitive.
    ``compute_ns_per_access``
        Core-side compute time per *raw* (pre-cache) memory access, in
        nanoseconds at the Table 1 clock.  Sets the compute bound that
        makes kernels like comd insensitive to the memory system.
    ``write_fraction``
        Fraction of DRAM accesses that are writes (reporting only; both
        directions consume channel bandwidth in this model).
    """

    parallelism: float = 256.0
    compute_ns_per_access: float = 0.0
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise WorkloadError("parallelism must be positive")
        if self.compute_ns_per_access < 0:
            raise WorkloadError("compute_ns_per_access must be >= 0")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction out of [0,1]")


@dataclass(frozen=True)
class DramTrace:
    """Post-cache access stream in footprint-page coordinates."""

    #: footprint page index per DRAM access, in execution order.
    page_indices: np.ndarray
    #: total pages in the program footprint (>= page_indices.max()+1).
    footprint_pages: int
    #: raw (pre-cache) access count, for compute-time scaling.
    n_raw_accesses: int
    #: number of equal-length execution epochs the stream divides into.
    n_epochs: int = 16
    #: bytes moved per DRAM access (one line).
    bytes_per_access: int = LINE_SIZE
    #: optional per-access write flag (same length as page_indices).
    #: ``None`` means direction is unknown and engines price every
    #: access as a read.
    is_write: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        indices = np.asarray(self.page_indices, dtype=np.int64)
        object.__setattr__(self, "page_indices", indices)
        if indices.ndim != 1:
            raise SimulationError("page_indices must be one-dimensional")
        if self.is_write is not None:
            flags = np.asarray(self.is_write, dtype=bool)
            object.__setattr__(self, "is_write", flags)
            if flags.shape != indices.shape:
                raise SimulationError(
                    "is_write must align with page_indices"
                )
        if self.footprint_pages <= 0:
            raise SimulationError("footprint_pages must be positive")
        if indices.size:
            if indices.min() < 0 or indices.max() >= self.footprint_pages:
                raise SimulationError(
                    "page index outside footprint "
                    f"[0, {self.footprint_pages})"
                )
        if self.n_raw_accesses < indices.size:
            raise SimulationError(
                "raw access count cannot be below DRAM access count"
            )
        if self.n_epochs <= 0:
            raise SimulationError("n_epochs must be positive")
        if self.bytes_per_access <= 0:
            raise SimulationError("bytes_per_access must be positive")

    @property
    def n_accesses(self) -> int:
        """DRAM-level access count."""
        return int(self.page_indices.size)

    @property
    def total_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.n_accesses * self.bytes_per_access

    def epoch_slices(self) -> list[slice]:
        """Index ranges of each execution epoch, in order."""
        edges = np.linspace(0, self.n_accesses, self.n_epochs + 1,
                            dtype=np.int64)
        return [slice(int(edges[i]), int(edges[i + 1]))
                for i in range(self.n_epochs)]

    def page_access_counts(self) -> np.ndarray:
        """DRAM accesses per footprint page (the oracle/profiler input)."""
        return np.bincount(self.page_indices,
                           minlength=self.footprint_pages).astype(np.int64)

    def miss_rate(self) -> float:
        """Fraction of raw accesses that reached DRAM."""
        if self.n_raw_accesses == 0:
            return 0.0
        return self.n_accesses / self.n_raw_accesses

    def coarsened(self, pages_per_block: int) -> "DramTrace":
        """The same stream re-binned to larger placement blocks.

        Placement at huge-page granularity (e.g. 512 x 4 KiB = 2 MiB)
        is modeled by grouping consecutive footprint pages into blocks:
        the returned trace's "pages" are blocks, so any policy placed
        on it decides once per block.  Access counts, ordering, write
        flags and bytes are unchanged — only the placement granularity
        coarsens.
        """
        if pages_per_block <= 0:
            raise SimulationError("pages_per_block must be positive")
        if pages_per_block == 1:
            return self
        return DramTrace(
            page_indices=self.page_indices // pages_per_block,
            footprint_pages=-(-self.footprint_pages // pages_per_block),
            n_raw_accesses=self.n_raw_accesses,
            n_epochs=self.n_epochs,
            bytes_per_access=self.bytes_per_access,
            is_write=self.is_write,
        )

    def write_fraction(self) -> float:
        """Fraction of DRAM accesses that are writes (0 when unknown)."""
        if self.is_write is None or self.n_accesses == 0:
            return 0.0
        return float(self.is_write.mean())

    def write_weights(self, write_cost_factors: np.ndarray,
                      access_zones: np.ndarray) -> np.ndarray:
        """Per-access channel-occupancy weight (1 for reads, the zone
        technology's write factor for writes)."""
        if self.is_write is None:
            return np.ones(self.n_accesses)
        factors = np.asarray(write_cost_factors, dtype=np.float64)
        weights = np.ones(self.n_accesses)
        weights[self.is_write] = factors[access_zones[self.is_write]]
        return weights


def validate_zone_map(zone_map: np.ndarray, footprint_pages: int,
                      n_zones: int) -> np.ndarray:
    """Check a placement vector against a trace and a topology.

    Engines call this before replaying: the zone map must cover the
    footprint exactly and name only zones that exist.
    """
    zone_map = np.asarray(zone_map)
    if zone_map.ndim != 1:
        raise SimulationError("zone map must be one-dimensional")
    if zone_map.size != footprint_pages:
        raise SimulationError(
            f"zone map covers {zone_map.size} pages, trace footprint "
            f"is {footprint_pages}"
        )
    if zone_map.size and (zone_map.min() < 0
                          or zone_map.max() >= n_zones):
        raise SimulationError(
            f"zone map names zone {int(zone_map.max())} but the "
            f"topology has zones 0..{n_zones - 1}"
        )
    return zone_map


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution."""

    engine: str
    total_time_ns: float
    dram_accesses: int
    bytes_by_zone: np.ndarray
    time_bandwidth_ns: float
    time_latency_ns: float
    time_compute_ns: float
    mshr_merges: int = 0

    def __post_init__(self) -> None:
        if self.total_time_ns <= 0:
            raise SimulationError("total_time_ns must be positive")
        object.__setattr__(
            self, "bytes_by_zone",
            np.asarray(self.bytes_by_zone, dtype=np.float64),
        )

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_by_zone.sum())

    @property
    def achieved_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth achieved, bytes/second."""
        return self.total_bytes / (self.total_time_ns / 1e9)

    @property
    def throughput(self) -> float:
        """Work per unit time (inverse runtime), arbitrary units.

        All paper figures report performance *relative* to a baseline,
        so only ratios of this value are meaningful.
        """
        return 1e9 / self.total_time_ns

    def zone_byte_fractions(self) -> np.ndarray:
        """Share of DRAM traffic served by each zone."""
        total = self.bytes_by_zone.sum()
        if total == 0:
            return np.zeros_like(self.bytes_by_zone)
        return self.bytes_by_zone / total

    def dominant_bound(self) -> str:
        """Which time component bounds this run ('bandwidth',
        'latency' or 'compute')."""
        parts = {
            "bandwidth": self.time_bandwidth_ns,
            "latency": self.time_latency_ns,
            "compute": self.time_compute_ns,
        }
        return max(parts, key=parts.get)
