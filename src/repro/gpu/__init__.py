"""GPU substrate: config, caches, MSHRs, interconnect, engines."""

from repro.gpu.banked import BankedEngine, BankState
from repro.gpu.cache import CacheHierarchy, CacheStats, SetAssocCache
from repro.gpu.config import GpuConfig, table1_config
from repro.gpu.engine import DetailedEngine
from repro.gpu.interconnect import (
    InterconnectLink,
    local_link,
    table1_remote_link,
)
from repro.gpu.mshr import MshrFile
from repro.gpu.simulator import GpuSystemSimulator, make_engine
from repro.gpu.throughput import ThroughputEngine
from repro.gpu.trace import DramTrace, SimResult, WorkloadCharacteristics

__all__ = [
    "BankedEngine",
    "BankState",
    "CacheHierarchy",
    "CacheStats",
    "SetAssocCache",
    "GpuConfig",
    "table1_config",
    "DetailedEngine",
    "InterconnectLink",
    "local_link",
    "table1_remote_link",
    "MshrFile",
    "GpuSystemSimulator",
    "make_engine",
    "ThroughputEngine",
    "DramTrace",
    "SimResult",
    "WorkloadCharacteristics",
]
