"""GPU <-> CPU interconnect model.

Table 1 models remote (CPU-attached, capacity-optimized) memory access
as a fixed, pessimistic 100 GPU-core-cycle hop, derived from the single
additional hop in SMP CPU designs.  The link object also carries an
optional bandwidth cap so NVLink-/QPI-class links can be modeled as a
potential bottleneck in extension studies (the paper's baseline keeps
the link unconstrained, as the 80 GB/s DDR4 pool, not the link, limits
remote traffic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class InterconnectLink:
    """A point-to-point coherent link between the GPU and a zone."""

    hop_cycles: int = 100
    #: bytes/second; ``inf`` models the paper's unconstrained link.
    bandwidth: float = math.inf

    def __post_init__(self) -> None:
        if self.hop_cycles < 0:
            raise ConfigError("hop_cycles must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")

    def latency_ns(self, clock_ghz: float) -> float:
        """One-way hop latency in nanoseconds at ``clock_ghz``."""
        if clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        return self.hop_cycles / clock_ghz

    def transfer_time_ns(self, n_bytes: int) -> float:
        """Serialization time for ``n_bytes`` over the link."""
        if n_bytes < 0:
            raise ConfigError("n_bytes must be >= 0")
        if math.isinf(self.bandwidth):
            return 0.0
        return n_bytes / self.bandwidth * 1e9


def local_link() -> InterconnectLink:
    """Zero-hop link for GPU-attached memory."""
    return InterconnectLink(hop_cycles=0)


def table1_remote_link() -> InterconnectLink:
    """The Table 1 remote link: 100 cycles, bandwidth-unconstrained."""
    return InterconnectLink(hop_cycles=100)
