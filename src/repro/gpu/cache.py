"""Set-associative caches and the GPU cache hierarchy.

The hierarchy filters a raw (SM-issued) line-address stream down to the
DRAM-level stream the placement study operates on: Figure 6's CDFs count
accesses to each 4 kB page "after being filtered by on-chip caches".

The model follows Table 1: a 16 kB L1 per SM (accesses striped across
SMs round-robin, as warps are) and a memory-side 128 kB L2 slice per
DRAM channel, indexed by line address.  Replacement is LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.gpu.config import GpuConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or one group of slices)."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.accesses + other.accesses,
                          self.hits + other.hits)


class SetAssocCache:
    """A set-associative LRU cache over line addresses.

    Addresses are *line* numbers (byte address / line size); the cache
    never sees byte offsets.  ``access`` returns True on hit and updates
    recency; misses fill (allocate-on-miss, no write-back modeling —
    DRAM traffic is counted per access, matching a sectored streaming
    cache).
    """

    def __init__(self, size_bytes: int, line_size: int, assoc: int) -> None:
        if size_bytes <= 0 or line_size <= 0 or assoc <= 0:
            raise ConfigError("cache geometry must be positive")
        n_lines = size_bytes // line_size
        if n_lines == 0 or n_lines % assoc:
            raise ConfigError(
                f"cache of {size_bytes}B / {line_size}B lines cannot be "
                f"{assoc}-way"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        # One LRU-ordered dict per set: keys are line tags.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        index = line_addr % self.n_sets
        cache_set = self._sets[index]
        self.stats.accesses += 1
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[line_addr] = None
        return False

    def flush(self) -> None:
        """Invalidate all lines, keep statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """L1-per-SM + memory-side L2, as in Table 1.

    ``filter_stream`` pushes a raw line-address stream through the
    hierarchy and returns the DRAM-level miss stream.  SM affinity for
    L1s is modeled by striping consecutive accesses across SMs, the
    steady-state behaviour of a round-robin warp scheduler.
    """

    def __init__(self, config: GpuConfig, n_channels: int) -> None:
        if n_channels <= 0:
            raise ConfigError("n_channels must be positive")
        self.config = config
        self.n_channels = n_channels
        self._l1s = [
            SetAssocCache(config.l1_bytes_per_sm, config.line_size,
                          config.l1_assoc)
            for _ in range(config.n_sms)
        ]
        self._l2s = [
            SetAssocCache(config.l2_bytes_per_channel, config.line_size,
                          config.l2_assoc)
            for _ in range(n_channels)
        ]

    def access(self, line_addr: int, sm: int) -> bool:
        """One access from SM ``sm``; True if served on chip."""
        if self._l1s[sm % len(self._l1s)].access(line_addr):
            return True
        slice_index = line_addr % self.n_channels
        return self._l2s[slice_index].access(line_addr)

    def filter_stream_indices(self, line_addrs: np.ndarray) -> np.ndarray:
        """Positions (into the raw stream) of accesses that miss on chip.

        Returning indices rather than addresses lets callers carry any
        per-access metadata (write flags, thread ids) through the
        filter.
        """
        misses = []
        append = misses.append
        n_sms = len(self._l1s)
        for position, line_addr in enumerate(line_addrs.tolist()):
            if not self.access(line_addr, position % n_sms):
                append(position)
        return np.asarray(misses, dtype=np.int64)

    def filter_stream(self, line_addrs: np.ndarray) -> np.ndarray:
        """DRAM-level miss stream for a raw access stream (in order)."""
        return np.asarray(line_addrs, dtype=np.int64)[
            self.filter_stream_indices(line_addrs)
        ]

    def l1_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._l1s:
            total = total.merge(cache.stats)
        return total

    def l2_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._l2s:
            total = total.merge(cache.stats)
        return total

    def flush(self) -> None:
        for cache in self._l1s:
            cache.flush()
        for cache in self._l2s:
            cache.flush()
