"""Set-associative caches and the GPU cache hierarchy.

The hierarchy filters a raw (SM-issued) line-address stream down to the
DRAM-level stream the placement study operates on: Figure 6's CDFs count
accesses to each 4 kB page "after being filtered by on-chip caches".

The model follows Table 1: a 16 kB L1 per SM (accesses striped across
SMs round-robin, as warps are) and a memory-side 128 kB L2 slice per
DRAM channel, indexed by line address.  Replacement is LRU.

``filter_stream_indices`` routes whole streams through the vectorized
LRU kernel (:mod:`repro.gpu.lru`) instead of the per-access
OrderedDict walk; the miss-index stream is bit-identical to the
sequential replay (the original loop survives as
:class:`repro.gpu._reference.ReferenceCacheHierarchy`, pinned by the
golden tests).  Scalar ``access`` calls still run the OrderedDict
path, so the two interoperate: dict state seeds the kernel as its
warm-start, and the kernel's final state is written back lazily —
materialized only when a scalar access, flush, or state inspection
actually needs it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.gpu.config import GpuConfig
from repro.gpu.lru import lru_filter, lru_final_state

#: memoized round-robin SM id pattern, keyed by (n_sms, length).
_SM_PATTERNS: dict[tuple[int, int], np.ndarray] = {}


def _sm_pattern(n_sms: int, n: int) -> np.ndarray:
    """``position % n_sms`` for the whole stream, cached per shape."""
    key = (n_sms, n)
    pattern = _SM_PATTERNS.get(key)
    if pattern is None:
        if len(_SM_PATTERNS) > 8:
            _SM_PATTERNS.clear()
        pattern = np.resize(np.arange(n_sms, dtype=np.int32), n)
        pattern.flags.writeable = False
        _SM_PATTERNS[key] = pattern
    return pattern


#: memoized byte-wide L1 set-id base (sm * sets_per_sm), per shape.
_SM_SCALED: dict[tuple[int, int, int], np.ndarray] = {}

#: memoized line -> L2 (slice, set) key tables, keyed by
#: (line_top, n_channels, n_sets).
_L2_KEY_TABLES: dict[tuple[int, int, int], np.ndarray] = {}


def _sm_scaled(n_sms: int, n_sets: int, n: int) -> np.ndarray:
    """``(position % n_sms) * n_sets`` as a byte pattern, cached."""
    key = (n_sms, n_sets, n)
    pattern = _SM_SCALED.get(key)
    if pattern is None:
        if len(_SM_SCALED) > 8:
            _SM_SCALED.clear()
        pattern = np.resize(
            np.arange(n_sms, dtype=np.int8) * np.int8(n_sets), n)
        pattern.flags.writeable = False
        _SM_SCALED[key] = pattern
    return pattern


def _l2_key_table(line_top: int, n_channels: int,
                  n_sets: int) -> np.ndarray:
    """Line -> packed (slice, set) id, one byte-wide gather per stream.

    Precomputing the modulo pair over the line universe turns the
    per-call ``% channels`` / ``% sets`` arithmetic (three stream-wide
    integer ops, one a true division) into a single table gather.
    """
    key = (line_top, n_channels, n_sets)
    table = _L2_KEY_TABLES.get(key)
    if table is None:
        if len(_L2_KEY_TABLES) > 4:
            _L2_KEY_TABLES.clear()
        span = np.arange(line_top + 1, dtype=np.int32)
        table = ((span % n_channels) * n_sets
                 + (span % n_sets)).astype(np.uint8)
        table.flags.writeable = False
        _L2_KEY_TABLES[key] = table
    return table


def _set_index(lines: np.ndarray, n_sets: int) -> np.ndarray:
    """``line % n_sets`` with a bit-mask fast path for power-of-two."""
    if n_sets & (n_sets - 1) == 0:
        return lines & lines.dtype.type(n_sets - 1)
    return lines % lines.dtype.type(n_sets)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or one group of slices)."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.accesses + other.accesses,
                          self.hits + other.hits)


class SetAssocCache:
    """A set-associative LRU cache over line addresses.

    Addresses are *line* numbers (byte address / line size); the cache
    never sees byte offsets.  ``access`` returns True on hit and updates
    recency; misses fill (allocate-on-miss, no write-back modeling —
    DRAM traffic is counted per access, matching a sectored streaming
    cache).
    """

    def __init__(self, size_bytes: int, line_size: int, assoc: int) -> None:
        if size_bytes <= 0 or line_size <= 0 or assoc <= 0:
            raise ConfigError("cache geometry must be positive")
        n_lines = size_bytes // line_size
        if n_lines == 0 or n_lines % assoc:
            raise ConfigError(
                f"cache of {size_bytes}B / {line_size}B lines cannot be "
                f"{assoc}-way"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        # One LRU-ordered dict per set: keys are line tags.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        index = line_addr % self.n_sets
        cache_set = self._sets[index]
        self.stats.accesses += 1
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[line_addr] = None
        return False

    def flush(self) -> None:
        """Invalidate all lines, keep statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """L1-per-SM + memory-side L2, as in Table 1.

    ``filter_stream`` pushes a raw line-address stream through the
    hierarchy and returns the DRAM-level miss stream.  SM affinity for
    L1s is modeled by striping consecutive accesses across SMs, the
    steady-state behaviour of a round-robin warp scheduler.
    """

    def __init__(self, config: GpuConfig, n_channels: int) -> None:
        if n_channels <= 0:
            raise ConfigError("n_channels must be positive")
        self.config = config
        self.n_channels = n_channels
        self._l1s = [
            SetAssocCache(config.l1_bytes_per_sm, config.line_size,
                          config.l1_assoc)
            for _ in range(config.n_sms)
        ]
        self._l2s = [
            SetAssocCache(config.l2_bytes_per_channel, config.line_size,
                          config.l2_assoc)
            for _ in range(n_channels)
        ]
        # Deferred kernel state: the set-sorted access chains of the
        # last vectorized filter, not yet written back into the
        # OrderedDicts.  ``None`` means the dicts are authoritative.
        self._pending_l1: tuple[np.ndarray, np.ndarray] | None = None
        self._pending_l2: tuple[np.ndarray, np.ndarray] | None = None

    def access(self, line_addr: int, sm: int) -> bool:
        """One access from SM ``sm``; True if served on chip."""
        self._materialize()
        if self._l1s[sm % len(self._l1s)].access(line_addr):
            return True
        slice_index = line_addr % self.n_channels
        return self._l2s[slice_index].access(line_addr)

    # ----- deferred state plumbing ---------------------------------

    def _materialize(self) -> None:
        """Write any pending kernel state back into the OrderedDicts."""
        if self._pending_l1 is not None:
            self._rebuild(self._l1s, self._pending_l1)
            self._pending_l1 = None
        if self._pending_l2 is not None:
            self._rebuild(self._l2s, self._pending_l2)
            self._pending_l2 = None

    @staticmethod
    def _rebuild(caches: list[SetAssocCache],
                 chain: tuple[np.ndarray, np.ndarray]) -> None:
        n_sets = caches[0].n_sets
        groups, lines = lru_final_state(chain[0], chain[1],
                                        caches[0].assoc)
        for cache in caches:
            for cache_set in cache._sets:
                cache_set.clear()
        # Residents arrive LRU-to-MRU per set: plain insertion order.
        for group, line in zip(groups.tolist(), lines.tolist()):
            caches[group // n_sets]._sets[group % n_sets][line] = None

    def _warm_state(self, caches: list[SetAssocCache],
                    pending: tuple[np.ndarray, np.ndarray] | None,
                    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Current contents of ``caches`` in kernel warm-start form."""
        if pending is not None:
            return lru_final_state(pending[0], pending[1],
                                   caches[0].assoc)
        n_sets = caches[0].n_sets
        groups: list[int] = []
        lines: list[int] = []
        for index, cache in enumerate(caches):
            base = index * n_sets
            for set_index, cache_set in enumerate(cache._sets):
                for line in cache_set:
                    groups.append(base + set_index)
                    lines.append(line)
        if not groups:
            return None, None
        return (np.asarray(groups, dtype=np.int64),
                np.asarray(lines, dtype=np.int64))

    @staticmethod
    def _add_stats(caches: list[SetAssocCache], accesses: np.ndarray,
                   hits: np.ndarray) -> None:
        """Fold per-cache counts in — one batched update per level."""
        for cache, n_acc, n_hit in zip(caches, accesses.tolist(),
                                       hits.tolist()):
            cache.stats.accesses += n_acc
            cache.stats.hits += n_hit

    # ----- stream filtering ----------------------------------------

    def filter_stream_indices(self, line_addrs: np.ndarray) -> np.ndarray:
        """Positions (into the raw stream) of accesses that miss on chip.

        Returning indices rather than addresses lets callers carry any
        per-access metadata (write flags, thread ids) through the
        filter.
        """
        line_addrs = np.asarray(line_addrs)
        n = int(line_addrs.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if int(line_addrs.min()) < 0:
            return self._filter_loop(line_addrs)  # degenerate input
        n_sms = len(self._l1s)
        l1_sets = self._l1s[0].n_sets
        l2_sets = self._l2s[0].n_sets

        line_top = int(line_addrs.max())
        dtype = np.int32 if line_top < 2 ** 31 else np.int64
        lines = line_addrs.astype(dtype, copy=False)
        sms = _sm_pattern(n_sms, n)

        # L1: one LRU set per (SM, set index); SM striping follows the
        # round-robin warp scheduler, as in the scalar path.
        if n_sms * l1_sets <= 127:
            # Byte-wide ids keep the grouping sort on the radix path
            # with no widening casts downstream.
            g1 = _set_index(lines, l1_sets).astype(np.int8)
            g1 += _sm_scaled(n_sms, l1_sets, n)
        else:
            g1 = sms * np.int32(l1_sets) + _set_index(lines, l1_sets)
        warm_sets, warm_lines = self._warm_state(self._l1s,
                                                 self._pending_l1)
        l1_hits, chain1 = lru_filter(g1, lines, self._l1s[0].assoc,
                                     warm_set_ids=warm_sets,
                                     warm_lines=warm_lines,
                                     n_groups=n_sms * l1_sets,
                                     line_top=line_top)
        self._pending_l1 = chain1

        l1_accesses = np.full(n_sms, n // n_sms, dtype=np.int64)
        l1_accesses[:n % n_sms] += 1
        self._add_stats(self._l1s, l1_accesses,
                        np.bincount(sms[l1_hits], minlength=n_sms))

        # L2: memory-side slices selected by line address, so the set
        # id is a pure function of the line (``line_keyed``).
        l1_miss_positions = np.nonzero(~l1_hits)[0]
        l2_lines = lines[l1_miss_positions]
        if line_top < 1 << 16 and self.n_channels * l2_sets < 1 << 8:
            g2 = _l2_key_table(line_top, self.n_channels,
                               l2_sets)[l2_lines]
            if l2_sets & (l2_sets - 1) == 0:
                channels = g2 >> np.uint8(l2_sets.bit_length() - 1)
            else:
                channels = g2 // np.uint8(l2_sets)
        else:
            channels = _set_index(l2_lines, self.n_channels)
            g2 = (channels * np.int32(l2_sets)
                  + _set_index(l2_lines, l2_sets))
        warm_sets, warm_lines = self._warm_state(self._l2s,
                                                 self._pending_l2)
        l2_hits, chain2 = lru_filter(g2, l2_lines, self._l2s[0].assoc,
                                     warm_set_ids=warm_sets,
                                     warm_lines=warm_lines,
                                     line_keyed=True,
                                     n_groups=self.n_channels * l2_sets,
                                     line_top=line_top)
        self._pending_l2 = chain2

        self._add_stats(
            self._l2s,
            np.bincount(channels, minlength=self.n_channels),
            np.bincount(channels[l2_hits], minlength=self.n_channels))

        return l1_miss_positions[~l2_hits]

    def _filter_loop(self, line_addrs: np.ndarray) -> np.ndarray:
        """Sequential fallback (e.g. negative addresses)."""
        misses = []
        n_sms = len(self._l1s)
        for position, line_addr in enumerate(line_addrs.tolist()):
            if not self.access(line_addr, position % n_sms):
                misses.append(position)
        return np.asarray(misses, dtype=np.int64)

    def filter_stream(self, line_addrs: np.ndarray) -> np.ndarray:
        """DRAM-level miss stream for a raw access stream (in order)."""
        return np.asarray(line_addrs, dtype=np.int64)[
            self.filter_stream_indices(line_addrs)
        ]

    def l1_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._l1s:
            total = total.merge(cache.stats)
        return total

    def l2_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._l2s:
            total = total.merge(cache.stats)
        return total

    def flush(self) -> None:
        # Pending kernel state is invalidated wholesale; statistics
        # were already folded in when the filter ran.
        self._pending_l1 = None
        self._pending_l2 = None
        for cache in self._l1s:
            cache.flush()
        for cache in self._l2s:
            cache.flush()
