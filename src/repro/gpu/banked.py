"""Bank-level DRAM engine: row buffers and Table 1 timings.

The detailed engine treats each channel as a FIFO pipe at peak
bandwidth; real DRAM serves requests through banks whose open row makes
the difference between a CAS-only access (tCL) and a full
precharge-activate-CAS cycle (tRP + tRCD + tCL, bounded by tRC per
row activation).  This engine extends the event-driven model with
per-bank row-buffer state driven by the Table 1 timing parameters:

* sequential streams hit the open row and approach peak bandwidth;
* random streams thrash rows and lose bandwidth to activate/precharge,
  the classic effective-bandwidth gap GPGPU-Sim models.

It exists to validate that the placement conclusions are not an
artifact of the peak-bandwidth abstraction: the banked ablation bench
checks the Section 3 policy ordering survives row-buffer effects.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.errors import SimulationError
from repro.core.units import LINE_SIZE, PAGE_SIZE
from repro.gpu.config import GpuConfig
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology

LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

#: DRAM row (page) size in lines; 2 KB rows of 128 B lines.
LINES_PER_ROW = 16


class BankState:
    """Open-row tracking for the banks of one channel."""

    def __init__(self, n_banks: int) -> None:
        if n_banks <= 0:
            raise SimulationError("n_banks must be positive")
        self.n_banks = n_banks
        self._open_rows = np.full(n_banks, -1, dtype=np.int64)
        self.row_hits = 0
        self.row_misses = 0

    def access(self, row: int) -> bool:
        """Access ``row``; returns True on a row-buffer hit."""
        bank = row % self.n_banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return True
        self._open_rows[bank] = row
        self.row_misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class BankedEngine:
    """Event-driven engine with per-bank row-buffer timing."""

    name = "banked"

    def __init__(self, config: GpuConfig, banks_per_channel: int = 16,
                 bank_overlap: int = 4) -> None:
        self.config = config
        if banks_per_channel <= 0:
            raise SimulationError("banks_per_channel must be positive")
        if bank_overlap <= 0:
            raise SimulationError("bank_overlap must be positive")
        self.banks_per_channel = banks_per_channel
        #: average activates overlapped behind other banks' transfers;
        #: divides the visible row-miss penalty on the data bus.
        self.bank_overlap = bank_overlap

    def run(self, trace: DramTrace, zone_map: np.ndarray,
            topology: SystemTopology,
            chars: WorkloadCharacteristics) -> SimResult:
        zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                     len(topology))
        if trace.n_accesses == 0:
            raise SimulationError("empty trace")

        n_zones = len(topology)
        n_channels_total = sum(zone.channels for zone in topology)
        window = max(1, int(min(
            chars.parallelism,
            self.config.total_mshrs(n_channels_total),
            self.config.max_warps_outstanding,
        )))

        channel_free = [np.zeros(zone.channels) for zone in topology]
        banks = [
            [BankState(self.banks_per_channel)
             for _ in range(zone.channels)]
            for zone in topology
        ]
        # Data-transfer occupancy of one line at channel peak rate.
        burst_ns = [
            trace.bytes_per_access
            / (zone.usable_bandwidth / zone.channels) * 1e9
            for zone in topology
        ]
        # Row-miss command overhead from the zone's DRAM timings,
        # divided by the cross-bank overlap the controller extracts.
        miss_extra_ns = [
            (zone.technology.timings.row_miss_cycles()
             - zone.technology.timings.row_hit_cycles())
            * zone.technology.timings.cycle_ns / self.bank_overlap
            for zone in topology
        ]
        latency_ns = [
            zone.latency_ns(self.config.clock_ghz) for zone in topology
        ]

        access_zones = zone_map[trace.page_indices].astype(np.int64)
        write_factors = np.array([
            zone.technology.write_cost_factor for zone in topology
        ])
        service_weights = trace.write_weights(write_factors, access_zones)
        pages = trace.page_indices
        miss_rate = max(trace.miss_rate(), 1e-12)
        compute_step = chars.compute_ns_per_access / miss_rate

        inflight: list[float] = []
        bytes_by_zone = np.zeros(n_zones)
        last_completion = 0.0

        for i in range(trace.n_accesses):
            zone_id = int(access_zones[i])
            ready = i * compute_step
            while len(inflight) >= window:
                ready = max(ready, heapq.heappop(inflight))

            zone_channels = channel_free[zone_id]
            # Lines interleave across channels; a DRAM row is a span of
            # *channel-local* lines, so sequential streams reuse rows.
            line = int(pages[i]) * LINES_PER_PAGE + (i % LINES_PER_PAGE)
            channel = line % zone_channels.size
            row = (line // zone_channels.size) // LINES_PER_ROW
            row_hit = banks[zone_id][channel].access(row)

            occupancy = burst_ns[zone_id] * service_weights[i] + (
                0.0 if row_hit else miss_extra_ns[zone_id]
            )
            start = max(ready, zone_channels[channel])
            finish = start + occupancy
            zone_channels[channel] = finish
            completion = finish + latency_ns[zone_id]

            heapq.heappush(inflight, completion)
            bytes_by_zone[zone_id] += trace.bytes_per_access
            last_completion = max(last_completion, completion)

        total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
        total_time = max(last_completion, total_compute)
        if total_time <= 0:
            raise SimulationError("banked engine produced zero runtime")

        busy = np.array([
            float(channel_free[z].sum()) for z in range(n_zones)
        ])
        return SimResult(
            engine=self.name,
            total_time_ns=total_time,
            dram_accesses=trace.n_accesses,
            bytes_by_zone=bytes_by_zone,
            time_bandwidth_ns=float(busy.max()),
            time_latency_ns=float(sum(latency_ns) / n_zones),
            time_compute_ns=total_compute,
        )

    def row_hit_rates(self, trace: DramTrace, zone_map: np.ndarray,
                      topology: SystemTopology,
                      chars: WorkloadCharacteristics
                      ) -> tuple[float, ...]:
        """Per-zone row-buffer hit rates for one replay (diagnostics)."""
        # Re-run with fresh state and collect the bank statistics.
        zone_map = np.asarray(zone_map)
        n_channels = [zone.channels for zone in topology]
        banks = [
            [BankState(self.banks_per_channel) for _ in range(count)]
            for count in n_channels
        ]
        access_zones = zone_map[trace.page_indices].astype(np.int64)
        for i in range(trace.n_accesses):
            zone_id = int(access_zones[i])
            line = (int(trace.page_indices[i]) * LINES_PER_PAGE
                    + (i % LINES_PER_PAGE))
            channel = line % n_channels[zone_id]
            row = (line // n_channels[zone_id]) // LINES_PER_ROW
            banks[zone_id][channel].access(row)
        rates = []
        for zone_banks in banks:
            hits = sum(bank.row_hits for bank in zone_banks)
            total = hits + sum(bank.row_misses for bank in zone_banks)
            rates.append(hits / total if total else 0.0)
        return tuple(rates)
