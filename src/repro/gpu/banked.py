"""Bank-level DRAM engine: row buffers and Table 1 timings.

The detailed engine treats each channel as a FIFO pipe at peak
bandwidth; real DRAM serves requests through banks whose open row makes
the difference between a CAS-only access (tCL) and a full
precharge-activate-CAS cycle (tRP + tRCD + tCL, bounded by tRC per
row activation).  This engine extends the event-driven model with
per-bank row-buffer state driven by the Table 1 timing parameters:

* sequential streams hit the open row and approach peak bandwidth;
* random streams thrash rows and lose bandwidth to activate/precharge,
  the classic effective-bandwidth gap GPGPU-Sim models.

It exists to validate that the placement conclusions are not an
artifact of the peak-bandwidth abstraction: the banked ablation bench
checks the Section 3 policy ordering survives row-buffer effects.

Row-buffer outcomes are a pure function of the access stream (a bank
hits iff its previous access touched the same row), so
:func:`_bank_row_hits` resolves every access with one grouping sort;
``run`` feeds the resulting occupancies through the batched window
kernel in :mod:`repro.gpu.service` and ``row_hit_rates`` reduces the
same per-access hit vector per zone.  The per-access loops survive as
:func:`repro.gpu._reference.reference_banked_run` and
:func:`repro.gpu._reference.reference_row_hit_rates` for the golden
suite.  :class:`BankState` remains the scalar building block the
reference (and its tests) use.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SimulationError
from repro.core.units import LINE_SIZE, PAGE_SIZE
from repro.gpu.config import GpuConfig
from repro.obs import trace as obs_trace
from repro.gpu.service import simulate_windowed
from repro.gpu.trace import (
    DramTrace,
    SimResult,
    WorkloadCharacteristics,
    validate_zone_map,
)
from repro.memory.topology import SystemTopology

LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

#: DRAM row (page) size in lines; 2 KB rows of 128 B lines.
LINES_PER_ROW = 16


class BankState:
    """Open-row tracking for the banks of one channel."""

    def __init__(self, n_banks: int) -> None:
        if n_banks <= 0:
            raise SimulationError("n_banks must be positive")
        self.n_banks = n_banks
        self._open_rows = np.full(n_banks, -1, dtype=np.int64)
        self.row_hits = 0
        self.row_misses = 0

    def access(self, row: int) -> bool:
        """Access ``row``; returns True on a row-buffer hit."""
        bank = row % self.n_banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return True
        self._open_rows[bank] = row
        self.row_misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


def _bank_row_hits(pages: np.ndarray, access_zones: np.ndarray,
                   zone_channels: np.ndarray, zone_offset: np.ndarray,
                   n_banks: int) -> tuple[np.ndarray, np.ndarray]:
    """Channel and row-buffer outcome of every access, vectorized.

    A bank's open row is always the row of its previous access, so
    access ``i`` hits iff the prior access to the same (zone, channel,
    bank) touched the same row — an adjacency test after one stable
    sort grouping the stream by bank.
    """
    n = pages.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool)
    # Lines interleave across channels; a DRAM row is a span of
    # *channel-local* lines, so sequential streams reuse rows.
    line = (pages * LINES_PER_PAGE
            + np.arange(n, dtype=np.int64) % LINES_PER_PAGE)
    per_zone = zone_channels[access_zones]
    channel = line % per_zone
    row = (line // per_zone) // LINES_PER_ROW
    bank_ids = ((zone_offset[access_zones] + channel) * n_banks
                + row % n_banks)
    if int(bank_ids.max()) < 1 << 15:
        bank_ids = bank_ids.astype(np.int16)
    order = np.argsort(bank_ids, kind="stable")
    bank_sorted = bank_ids[order]
    row_sorted = row[order]
    hit_sorted = np.empty(n, dtype=bool)
    hit_sorted[0] = False
    np.logical_and(bank_sorted[1:] == bank_sorted[:-1],
                   row_sorted[1:] == row_sorted[:-1],
                   out=hit_sorted[1:])
    row_hit = np.empty(n, dtype=bool)
    row_hit[order] = hit_sorted
    return channel, row_hit


class BankedEngine:
    """Event-driven engine with per-bank row-buffer timing."""

    name = "banked"

    def __init__(self, config: GpuConfig, banks_per_channel: int = 16,
                 bank_overlap: int = 4) -> None:
        self.config = config
        if banks_per_channel <= 0:
            raise SimulationError("banks_per_channel must be positive")
        if bank_overlap <= 0:
            raise SimulationError("bank_overlap must be positive")
        self.banks_per_channel = banks_per_channel
        #: average activates overlapped behind other banks' transfers;
        #: divides the visible row-miss penalty on the data bus.
        self.bank_overlap = bank_overlap

    def run(self, trace: DramTrace, zone_map: np.ndarray,
            topology: SystemTopology,
            chars: WorkloadCharacteristics) -> SimResult:
        with obs_trace.span("engine.banked", cat="gpu",
                            accesses=trace.n_accesses):
            return self._simulate(trace, zone_map, topology, chars)

    def _simulate(self, trace: DramTrace, zone_map: np.ndarray,
                  topology: SystemTopology,
                  chars: WorkloadCharacteristics) -> SimResult:
        zone_map = validate_zone_map(zone_map, trace.footprint_pages,
                                     len(topology))
        if trace.n_accesses == 0:
            raise SimulationError("empty trace")

        n_zones = len(topology)
        zone_channels = np.array([zone.channels for zone in topology],
                                 dtype=np.int64)
        n_channels_total = int(zone_channels.sum())
        window = max(1, int(min(
            chars.parallelism,
            self.config.total_mshrs(n_channels_total),
            self.config.max_warps_outstanding,
        )))

        # Data-transfer occupancy of one line at channel peak rate,
        # using the GPU-viewpoint bandwidth from the distance matrix.
        usable_bw = topology.gpu_usable_bandwidths()
        burst_ns = np.array([
            trace.bytes_per_access
            / (usable_bw[zone.zone_id] / zone.channels) * 1e9
            for zone in topology
        ])
        # Row-miss command overhead from the zone's DRAM timings,
        # divided by the cross-bank overlap the controller extracts.
        miss_extra_ns = np.array([
            (zone.technology.timings.row_miss_cycles()
             - zone.technology.timings.row_hit_cycles())
            * zone.technology.timings.cycle_ns / self.bank_overlap
            for zone in topology
        ])
        latency_ns = np.array(
            topology.gpu_latencies_ns(self.config.clock_ghz)
        )

        access_zones = zone_map[trace.page_indices].astype(np.int64)
        write_factors = np.array([
            zone.technology.write_cost_factor for zone in topology
        ])
        service_weights = trace.write_weights(write_factors, access_zones)
        miss_rate = max(trace.miss_rate(), 1e-12)
        compute_step = chars.compute_ns_per_access / miss_rate

        zone_offset = np.concatenate(([0], np.cumsum(zone_channels)[:-1]))
        channel, row_hit = _bank_row_hits(trace.page_indices,
                                          access_zones, zone_channels,
                                          zone_offset,
                                          self.banks_per_channel)
        channel_ids = (zone_offset[access_zones] + channel
                       ).astype(np.int16)

        n = trace.n_accesses
        occupancy = (burst_ns[access_zones] * service_weights
                     + np.where(row_hit, 0.0,
                                miss_extra_ns[access_zones]))
        latency = latency_ns[access_zones]
        ready_base = np.arange(n, dtype=np.float64) * compute_step
        last_completion = simulate_windowed(ready_base, occupancy,
                                            latency, channel_ids,
                                            n_channels_total, window)

        total_compute = trace.n_raw_accesses * chars.compute_ns_per_access
        total_time = max(last_completion, total_compute)
        if total_time <= 0:
            raise SimulationError("banked engine produced zero runtime")

        # Busy time per channel — transfer occupancy actually served,
        # not the last-free timestamp, so dominant_bound() can trust it.
        busy = np.bincount(channel_ids, weights=occupancy,
                           minlength=n_channels_total)
        bytes_by_zone = (np.bincount(access_zones, minlength=n_zones)
                         * float(trace.bytes_per_access))
        return SimResult(
            engine=self.name,
            total_time_ns=total_time,
            dram_accesses=trace.n_accesses,
            bytes_by_zone=bytes_by_zone,
            time_bandwidth_ns=float(busy.max()),
            time_latency_ns=float(latency_ns.sum() / n_zones),
            time_compute_ns=total_compute,
        )

    def row_hit_rates(self, trace: DramTrace, zone_map: np.ndarray,
                      topology: SystemTopology,
                      chars: WorkloadCharacteristics
                      ) -> tuple[float, ...]:
        """Per-zone row-buffer hit rates for one replay (diagnostics)."""
        del chars  # outcomes depend only on the stream, kept for API
        zone_map = np.asarray(zone_map)
        n_zones = len(topology)
        zone_channels = np.array([zone.channels for zone in topology],
                                 dtype=np.int64)
        zone_offset = np.concatenate(([0], np.cumsum(zone_channels)[:-1]))
        access_zones = zone_map[trace.page_indices].astype(np.int64)
        _, row_hit = _bank_row_hits(trace.page_indices, access_zones,
                                    zone_channels, zone_offset,
                                    self.banks_per_channel)
        totals = np.bincount(access_zones, minlength=n_zones)
        hits = np.bincount(access_zones, weights=row_hit,
                           minlength=n_zones)
        return tuple(
            float(h) / int(t) if t else 0.0
            for h, t in zip(hits, totals)
        )
