"""Trace serialization.

A trace-driven placement simulator is most useful when it can consume
traces users collected elsewhere (a binary-instrumentation run, a real
profiler, another simulator).  :func:`save_trace`/:func:`load_trace`
persist :class:`DramTrace` objects to ``.npz`` with their metadata, and
the format doubles as the interchange point for shipping traces between
machines or caching expensive trace synthesis across sessions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.trace import DramTrace

#: bumped on any incompatible change to the on-disk layout.
FORMAT_VERSION = 1


def save_trace(trace: DramTrace, path: Union[str, Path],
               structures: Optional[Mapping[str, range]] = None) -> Path:
    """Write a trace (and optional structure layout) to ``path``.

    ``structures`` maps data-structure names to footprint page ranges,
    preserving the Figure 7 decomposition alongside the access stream.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    metadata = {
        "version": FORMAT_VERSION,
        "footprint_pages": trace.footprint_pages,
        "n_raw_accesses": trace.n_raw_accesses,
        "n_epochs": trace.n_epochs,
        "bytes_per_access": trace.bytes_per_access,
        "structures": (
            {name: [pages.start, pages.stop]
             for name, pages in structures.items()}
            if structures is not None else None
        ),
    }
    arrays = {
        "page_indices": trace.page_indices,
        "metadata": np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8
        ),
    }
    if trace.is_write is not None:
        arrays["is_write"] = trace.is_write
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: Union[str, Path]
               ) -> tuple[DramTrace, Optional[dict[str, range]]]:
    """Read a trace written by :func:`save_trace`.

    Returns ``(trace, structures)``; ``structures`` is ``None`` when
    the file carries no layout.
    """
    path = Path(path)
    if not path.exists():
        raise SimulationError(f"trace file {path} does not exist")
    try:
        with np.load(path) as archive:
            page_indices = archive["page_indices"]
            is_write = (archive["is_write"]
                        if "is_write" in archive.files else None)
            metadata = json.loads(bytes(archive["metadata"]).decode())
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise SimulationError(f"malformed trace file {path}: {exc}") from exc
    version = metadata.get("version")
    if version != FORMAT_VERSION:
        raise SimulationError(
            f"trace file {path} has format version {version}, "
            f"expected {FORMAT_VERSION}"
        )
    trace = DramTrace(
        page_indices=page_indices,
        footprint_pages=int(metadata["footprint_pages"]),
        n_raw_accesses=int(metadata["n_raw_accesses"]),
        n_epochs=int(metadata["n_epochs"]),
        bytes_per_access=int(metadata["bytes_per_access"]),
        is_write=is_write,
    )
    raw_structures = metadata.get("structures")
    structures = None
    if raw_structures is not None:
        structures = {
            name: range(int(bounds[0]), int(bounds[1]))
            for name, bounds in raw_structures.items()
        }
    return trace, structures
