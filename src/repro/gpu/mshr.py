"""Miss Status Holding Register (MSHR) file.

Table 1 provisions 128 MSHR entries per L2 slice; the paper notes this
is "sufficient to effectively hide the additional interconnect latency"
and cites techniques to scale MSHRs if two-level memory made them a
bottleneck.  The MSHR file bounds outstanding DRAM misses and merges
redundant requests to a line that is already in flight — both effects
matter when the detailed engine decides how much memory-level
parallelism a workload can actually express.
"""

from __future__ import annotations

from repro.core.errors import SimulationError


class MshrFile:
    """Outstanding-miss tracker with secondary-miss merging.

    ``allocate`` registers a primary miss for a line (consuming an
    entry) or merges into an existing entry; ``release`` retires the
    entry when the fill returns.
    """

    def __init__(self, n_entries: int) -> None:
        if n_entries <= 0:
            raise SimulationError("MSHR file needs at least one entry")
        self.n_entries = n_entries
        self._inflight: dict[int, int] = {}
        self.primary_misses = 0
        self.merged_misses = 0
        self.stalls = 0

    @property
    def occupancy(self) -> int:
        """Entries currently in flight."""
        return len(self._inflight)

    @property
    def full(self) -> bool:
        return len(self._inflight) >= self.n_entries

    def inflight(self, line_addr: int) -> bool:
        return line_addr in self._inflight

    def allocate(self, line_addr: int) -> bool:
        """Register a miss.

        Returns True when this is a *primary* miss that must go to DRAM,
        False when it merged with an in-flight request.  Raises if the
        file is full and the line is not already in flight — callers
        must check :attr:`full` first and stall (counting the stall).
        """
        if line_addr in self._inflight:
            self._inflight[line_addr] += 1
            self.merged_misses += 1
            return False
        if self.full:
            self.stalls += 1
            raise SimulationError("MSHR allocation while full")
        self._inflight[line_addr] = 1
        self.primary_misses += 1
        return True

    def release(self, line_addr: int) -> int:
        """Retire the entry for ``line_addr``; returns merged count."""
        try:
            waiters = self._inflight.pop(line_addr)
        except KeyError:
            raise SimulationError(f"release of idle line {line_addr}")
        return waiters

    def reset(self) -> None:
        self._inflight.clear()
        self.primary_misses = 0
        self.merged_misses = 0
        self.stalls = 0
