"""Command-line interface.

Everything the library does is reachable from the shell::

    repro list workloads
    repro run --workload bfs --policy BW-AWARE --capacity 0.1
    repro compare --workload lbm bfs --jobs 4
    repro figure fig03_ratio_sweep --jobs 4
    repro profile --workload bfs
    repro trace --workload bfs --out bfs.npz
    repro serve --port 8077
    repro request simulate -w bfs -p BW-AWARE

(or ``python -m repro ...`` without the console script installed).

``compare`` and ``figure`` execute their experiment grids through
:mod:`repro.runner`: ``--jobs N`` fans misses across N worker
processes, and completed results are cached on disk (default
``$REPRO_CACHE_DIR`` or ``./.repro-cache``; disable with
``--no-cache``) so re-running a figure after an unrelated edit is
near-instant.  Each sweep writes a manifest under
``<cache>/runs/<run-id>/manifest.json`` recording specs, timings and
cache hits.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.cachedir import describe_default
from repro.core.errors import ConfigError, ReproError, ServeError
from repro.obs import trace as obs_trace
from repro.core.experiment import compare_policies, run_experiment
from repro.core.metrics import normalize
from repro.core.units import format_bytes
from repro.gpu.trace_io import save_trace
from repro.memory.topology import (
    NAMED_TOPOLOGIES,
    SystemTopology,
    topology_by_name,
    topology_names,
)
from repro.policies.registry import policy_names
from repro.profiling.cdf import AccessCdf
from repro.profiling.profiler import PageAccessProfiler
from repro.runner import ResultCache, configured, make_spec
from repro.workloads import get_workload, scenario_names, workload_names

#: the CLI spelling of the shared topology registry.
TOPOLOGIES = NAMED_TOPOLOGIES


def _topology(name: str) -> SystemTopology:
    try:
        return topology_by_name(name)
    except ConfigError as exc:
        raise SystemExit(str(exc))


def _experiment_names() -> list[str]:
    from repro import experiments

    return sorted(experiments.__all__)


def _trace_registry(cache_dir: Optional[str]):
    """The trace registry the ingest/mix verbs operate on.

    ``--cache-dir`` relocates it (and becomes the session default so
    ``trace:``/``mix:`` workload resolution finds the same traces);
    otherwise $REPRO_TRACE_DIR or ``<cache-root>/traces``.
    """
    from repro.core.cachedir import cache_root
    from repro.ingest import TraceRegistry, default_root, set_default_root
    from repro.ingest.registry import TRACES_DIRNAME

    if cache_dir:
        root = cache_root(cache_dir) / TRACES_DIRNAME
        set_default_root(root)
        return TraceRegistry(root)
    return TraceRegistry(default_root())


def cmd_list(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "traces":
        registry = _trace_registry(getattr(args, "cache_dir", None))
        names = registry.names()
        for name in names:
            record = registry.record(name)
            if record is None:
                continue
            print(f"{record.canonical:32s} [{record.fmt:4s}] "
                  f"{record.n_accesses} accesses, "
                  f"{record.footprint_pages} pages, "
                  f"{format_bytes(record.source_bytes)}")
        if not names:
            print("no ingested traces "
                  "(add one with `repro ingest <file>`)")
        quarantined = registry.quarantined_count()
        if quarantined:
            print(f"{quarantined} quarantined reject(s) under "
                  f"{registry.quarantine_dir()}")
        return 0
    if kind == "workloads":
        for name in workload_names():
            workload = get_workload(name)
            print(f"{name:12s} [{workload.suite:8s}] "
                  f"{workload.description}")
        for name in scenario_names():
            workload = get_workload(name)
            print(f"{name:14s} [{workload.suite:8s}] "
                  f"{workload.description}")
    elif kind == "policies":
        for name in policy_names():
            print(name)
    elif kind == "experiments":
        for name in _experiment_names():
            print(name)
    elif kind == "topologies":
        for name, factory in sorted(TOPOLOGIES.items()):
            topology = factory()
            zones = ", ".join(
                f"{z.name}={z.bandwidth_gbps:.0f}GB/s" for z in topology
            )
            print(f"{name:10s} {zones}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.workload,
        dataset=args.dataset,
        policy=args.policy,
        topology=_topology(args.topology),
        bo_capacity_fraction=args.capacity,
        engine=args.engine,
        trace_accesses=args.accesses,
        seed=args.seed,
    )
    print(result.describe())
    print(f"achieved bandwidth: "
          f"{result.sim.achieved_bandwidth / 1e9:.1f} GB/s")
    print(f"dominant bound: {result.sim.dominant_bound()}")
    return 0


def _sweep_runner(args: argparse.Namespace):
    """A scoped :mod:`repro.runner` configuration from CLI flags.

    Caching defaults ON for CLI sweeps; ``--no-cache`` bypasses it and
    ``--cache-dir`` relocates it (otherwise ``$REPRO_CACHE_DIR`` or
    ``./.repro-cache``).
    """
    if args.no_cache:
        cache: object = False
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = True
    return configured(jobs=args.jobs, cache=cache,
                      runs_dir=args.runs_dir,
                      chunk_timeout_s=args.chunk_timeout,
                      max_retries=args.max_retries,
                      shm=getattr(args, "shm", None),
                      pin_cores=getattr(args, "pin_cores", None))


def cmd_autotune(args: argparse.Namespace) -> int:
    from repro.tuning import RatioController, TunedProfileStore, autotune

    topology = _topology(args.topology)
    controller = RatioController()
    try:
        report = autotune(
            args.workload, topology,
            dataset=args.dataset,
            engine=args.engine,
            n_accesses=args.accesses,
            seed=args.seed,
            epochs=args.epochs,
            controller=controller,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))

    def fmt(fractions) -> str:
        return "[" + ", ".join(f"{f:.3f}" for f in fractions) + "]"

    print(f"{report.workload}/{report.dataset} on {report.topology} "
          f"({report.engine}, {report.epochs} epochs)")
    print(f"static fractions : {fmt(report.static_fractions)} "
          f"-> {report.static_time_ns / 1e6:.3f} ms")
    print(f"tuned fractions  : {fmt(report.tuned_fractions)} "
          f"-> {report.tuned_time_ns / 1e6:.3f} ms")
    print(f"closed-form SBIT : {fmt(report.closed_form_fractions)}")
    print(f"speedup over static: {report.speedup:.3f}x   "
          f"gap to closed form: {report.closed_form_gap:.4f}")
    if not args.no_save:
        store = TunedProfileStore(args.cache_dir)
        key = store.profile_key(
            report.workload, report.dataset, topology, report.engine,
            report.seed, report.epochs, report.n_accesses, controller)
        path = store.store(key, report)
        print(f"profile saved: {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    topology = _topology(args.topology)
    with _sweep_runner(args) as runner:
        outcome = runner.run([
            make_spec(
                workload, policy,
                dataset=args.dataset,
                topology=topology,
                bo_capacity_fraction=args.capacity,
                trace_accesses=args.accesses,
                seed=args.seed,
            )
            for workload in args.workload
            for policy in args.policies
        ])
        results = iter(outcome.results)
        for workload in args.workload:
            per_policy = {policy: next(results)
                          for policy in args.policies}
            normalized = normalize(
                {name: r.throughput for name, r in per_policy.items()},
                args.policies[0],
            )
            if len(args.workload) > 1:
                print(f"{workload}:")
            for name in args.policies:
                result = per_policy[name]
                print(f"{name:18s} {normalized[name]:6.3f}x  "
                      f"{result.time_ns / 1e6:8.3f} ms  "
                      f"{result.sim.achieved_bandwidth / 1e9:6.1f} GB/s")
        print(outcome.manifest.summary())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    if args.name not in _experiment_names():
        raise SystemExit(
            f"unknown experiment {args.name!r}; see `repro list "
            "experiments`"
        )
    module = importlib.import_module(f"repro.experiments.{args.name}")
    with _sweep_runner(args) as runner:
        if args.chart:
            from repro.analysis.charts import ascii_chart
            from repro.analysis.report import FigureResult

            candidates = [getattr(module, "run", None)] + [
                getattr(module, name) for name in sorted(dir(module))
                if name.startswith("run_")
            ]
            result = None
            for candidate in candidates:
                if callable(candidate):
                    produced = candidate()
                    if isinstance(produced, FigureResult):
                        result = produced
                        break
            if result is None:
                raise SystemExit(
                    f"{args.name} does not produce a line figure; run "
                    "without --chart"
                )
            print(ascii_chart(result))
        else:
            module.main()
        if runner.last_manifest is not None:
            print(runner.last_manifest.summary())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    profile = PageAccessProfiler().profile(
        workload, args.dataset,
        n_accesses=args.accesses, seed=args.seed,
    )
    print(f"{args.workload}/{args.dataset}: "
          f"{profile.total_accesses} DRAM accesses over "
          f"{profile.footprint_pages} pages")
    for structure in profile.hotness_ranking():
        share = structure.accesses / max(profile.total_accesses, 1)
        print(f"  {structure.name:24s} "
              f"{format_bytes(structure.n_pages * 4096):>10} "
              f"{share:7.1%}  {structure.hotness_density:10.1f} acc/page")
    cdf = AccessCdf.from_counts(profile.page_counts)
    print(f"traffic from hottest 10% of pages: "
          f"{cdf.traffic_at_footprint(0.1):.0%} "
          f"(skew {cdf.skew():.2f})")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.calibration import run_scorecard

    workloads = args.workloads if args.workloads else None
    scorecard = run_scorecard(workloads)
    print(scorecard.render())
    return 0 if scorecard.all_within_band else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import BenchReport, check_regression, run_bench

    report = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        n_accesses=args.accesses,
        seed=args.seed,
        skip_cold=args.skip_cold,
        skip_runner=args.skip_runner,
        progress=lambda message: print(f"  bench {message}",
                                       file=sys.stderr),
    )
    for case in report.cases:
        speedup = (f"{case.speedup:6.1f}x"
                   if case.speedup is not None else "       ")
        old = (f"{case.old_ms:9.1f} ms" if case.old_ms is not None
               else "           ")
        print(f"{case.bench:9s} {case.workload:10s} "
              f"new {case.new_ms:9.1f} ms  old {old} {speedup}")
    for key in sorted(report.summary):
        print(f"{key}: {report.summary[key]:.3f}")

    out = args.out or f"BENCH_{report.rev}.json"
    path = Path(out)
    path.write_text(report.to_json())
    print(f"wrote {path}")

    if args.check_against:
        baseline = BenchReport.from_json(
            Path(args.check_against).read_text())
        failures = check_regression(report, baseline,
                                    max_ratio=args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.max_regression:.1f}x)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    kwargs = {} if args.accesses is None else {"n_accesses": args.accesses}
    trace = workload.dram_trace(args.dataset, seed=args.seed, **kwargs)
    path = save_trace(trace, args.out,
                      structures=workload.page_ranges(args.dataset))
    print(f"wrote {trace.n_accesses} accesses "
          f"({trace.footprint_pages} pages) to {path}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.core.errors import IngestError
    from repro.ingest import DEFAULT_LIMITS

    if args.name is not None and len(args.files) != 1:
        raise SystemExit("--name requires exactly one input file")
    registry = _trace_registry(args.cache_dir)
    overrides = {}
    if args.max_bytes is not None:
        overrides["max_bytes"] = args.max_bytes
    if args.max_lines is not None:
        overrides["max_lines"] = args.max_lines
    if args.max_pages is not None:
        overrides["max_pages"] = args.max_pages
    if args.deadline is not None:
        overrides["deadline_s"] = args.deadline
    try:
        limits = dataclasses.replace(DEFAULT_LIMITS, **overrides)
    except ConfigError as exc:
        raise SystemExit(str(exc))
    rejected = 0
    for path in args.files:
        try:
            record = registry.admit(Path(path), name=args.name,
                                    fmt=args.format, limits=limits)
        except (IngestError, OSError) as exc:
            rejected += 1
            print(f"REJECTED {path}: {exc}", file=sys.stderr)
        else:
            print(f"admitted {record.canonical}  "
                  f"[{record.fmt}] {record.n_accesses} accesses, "
                  f"{record.footprint_pages} pages, "
                  f"{format_bytes(record.source_bytes)}")
    if rejected:
        print(f"{rejected} of {len(args.files)} input(s) rejected; "
              f"see {registry.quarantine_dir()}", file=sys.stderr)
    return 1 if rejected else 0


def cmd_mix(args: argparse.Namespace) -> int:
    from repro.ingest import run_mix

    registry = _trace_registry(args.cache_dir)
    topology = _topology(args.topology)
    try:
        with _sweep_runner(args) as runner:
            outcome = run_mix(
                args.members, args.policies, runner,
                registry=registry,
                topology=topology,
                bo_capacity_fraction=args.capacity,
                seed=args.seed,
            )
            for member in outcome.members:
                if member.ok:
                    print(f"member {member.canonical}: ok "
                          f"({member.accesses} accesses)")
                else:
                    reason = (member.error or {}).get("reason",
                                                      "unknown failure")
                    print(f"member {member.name}: FAILED — {reason}",
                          file=sys.stderr)
            if outcome.workload_name is None:
                print("no members survived admission; nothing to run",
                      file=sys.stderr)
                return 1
            print(f"swept {outcome.workload_name}")
            for policy, result in zip(args.policies, outcome.results):
                print(f"{policy:18s} {result.time_ns / 1e6:8.3f} ms  "
                      f"{result.sim.achieved_bandwidth / 1e9:6.1f} GB/s")
            if outcome.manifest is not None:
                print(outcome.manifest.summary())
    except ConfigError as exc:
        raise SystemExit(str(exc))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig
    from repro.serve import run as serve_run

    kwargs = {}
    # None → the ServeConfig default (which reads the REPRO_SERVE_*
    # environment knobs), so flags only override when given.
    if args.shards is not None:
        kwargs["shards"] = args.shards
    if args.queue_limit is not None:
        kwargs["admission_capacity"] = args.queue_limit
    if args.high_watermark is not None:
        kwargs["admission_high_watermark"] = args.high_watermark
    if args.low_watermark is not None:
        kwargs["admission_low_watermark"] = args.low_watermark
    if args.shard_inflight is not None:
        kwargs["proxy_inflight_per_shard"] = args.shard_inflight
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        jobs=args.jobs if args.jobs is not None else 1,
        max_pending_jobs=args.max_pending,
        simulate_workers=args.workers,
        request_timeout_s=args.timeout,
        batch_window_ms=args.batch_window_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        drain_timeout_s=args.drain_timeout,
        chunk_timeout_s=args.chunk_timeout,
        max_retries=args.max_retries,
        use_shm=args.shm,
        pin_cores=args.pin_cores,
        **kwargs,
    )
    if config.shards > 0:
        from repro.serve.cluster import run_cluster

        run_cluster(config)
    else:
        serve_run(config)
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.serve.config import default_serve_url
    from repro.serve.loadtest import (
        format_summary,
        run_loadtest,
        write_report,
    )

    report = run_loadtest(
        args.url or default_serve_url(),
        duration_s=args.duration,
        placement_workers=args.placement_workers,
        simulate_workers=args.simulate_workers,
        distinct_specs=args.distinct,
        workload=args.workload,
        trace_accesses=args.accesses,
        seed_base=args.seed_base,
        timeout_s=args.timeout,
    )
    print(format_summary(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote report to {args.out}")
    return 0


def cmd_request(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(args.url, timeout_s=args.timeout)
    try:
        if args.endpoint == "health":
            _print_json(client.health())
        elif args.endpoint == "metrics":
            print(client.metrics_text(), end="")
        elif args.endpoint == "placement":
            sizes = _csv_values(args.sizes, int, "--sizes")
            hotness = _csv_values(args.hotness, float, "--hotness")
            _print_json(client.placement(
                sizes=sizes, hotness=hotness,
                bo_capacity_bytes=args.bo_capacity,
                topology=args.topology,
            ))
        elif args.endpoint == "simulate":
            _print_json(client.simulate(
                workload=args.workload,
                policy=args.policy,
                dataset=args.dataset,
                topology=args.topology,
                bo_capacity_fraction=args.capacity,
                trace_accesses=args.accesses,
                seed=args.seed,
                engine=args.engine,
                retries=args.retries,
            ))
        elif args.endpoint == "profile":
            _print_json(client.profile(
                args.workload, dataset=args.dataset,
                accesses=args.accesses, seed=args.seed,
            ))
    except ServeError as exc:
        hint = (f" (retry after {exc.retry_after:g}s)"
                if exc.retry_after is not None else "")
        print(f"error [{exc.status or 'transport'}]: {exc}{hint}",
              file=sys.stderr)
        return 1
    return 0


def _print_json(payload: dict) -> None:
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _csv_values(raw: str, cast, flag: str) -> list:
    try:
        return [cast(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"{flag} must be comma-separated numbers")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Page Placement Strategies for "
                     "GPUs within Heterogeneous Memory Systems' "
                     "(ASPLOS 2015)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate library entities")
    p_list.add_argument("kind", choices=("workloads", "policies",
                                         "experiments", "topologies",
                                         "traces"))
    p_list.add_argument("--cache-dir", default=None,
                        help="cache root whose trace registry to list "
                             f"(default: {describe_default()})")
    p_list.set_defaults(fn=cmd_list)

    def common(p: argparse.ArgumentParser,
               multi_workload: bool = False) -> None:
        if multi_workload:
            p.add_argument("--workload", "-w", required=True, nargs="+",
                           help="benchmark name(s) "
                                "(see `repro list workloads`)")
        else:
            p.add_argument("--workload", "-w", required=True,
                           help="benchmark name "
                                "(see `repro list workloads`)")
        p.add_argument("--dataset", "-d", default="default")
        p.add_argument("--topology", "-t", default="baseline",
                       choices=sorted(TOPOLOGIES))
        p.add_argument("--capacity", "-c", type=float, default=None,
                       help="BO capacity as a fraction of the footprint")
        p.add_argument("--accesses", "-n", type=int, default=None,
                       help="raw trace length")
        p.add_argument("--seed", type=int, default=0)

    def trace_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record a span trace and write Chrome "
                            "trace-event JSON here on exit (also: "
                            "REPRO_TRACE=<path>); open in Perfetto or "
                            "about:tracing")

    def runner_options(p: argparse.ArgumentParser) -> None:
        trace_option(p)
        p.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for the sweep "
                            "(default: $REPRO_JOBS or 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
        p.add_argument("--cache-dir", default=None,
                       help="result cache root (default: "
                            f"{describe_default()})")
        p.add_argument("--runs-dir", default=None,
                       help="manifest directory "
                            "(default: <cache-dir>/runs)")
        p.add_argument("--chunk-timeout", type=float, default=None,
                       help="wall-clock budget per worker chunk in "
                            "seconds; hung chunks are retried "
                            "(default: $REPRO_CHUNK_TIMEOUT or off)")
        p.add_argument("--max-retries", type=int, default=None,
                       help="retry budget per spec before the sweep "
                            "fails (default: $REPRO_MAX_RETRIES or 2)")
        p.add_argument("--shm", dest="shm", action="store_true",
                       default=None,
                       help="force shared-memory trace shipping "
                            "(default: $REPRO_SHM, or automatic when "
                            "--jobs > 1)")
        p.add_argument("--no-shm", dest="shm", action="store_false",
                       help="disable shared-memory trace shipping "
                            "(workers synthesize traces themselves)")
        p.add_argument("--pin-cores", dest="pin_cores",
                       action="store_true", default=None,
                       help="pin each worker to its own core group "
                            "via sched_setaffinity (default: "
                            "$REPRO_PIN_CORES or off)")

    p_run = sub.add_parser("run", help="run one placement experiment")
    common(p_run)
    p_run.add_argument("--policy", "-p", default="BW-AWARE")
    p_run.add_argument("--engine", default="throughput",
                       choices=("throughput", "detailed", "banked"))
    trace_option(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_tune = sub.add_parser(
        "autotune",
        help="close the loop: tune the interleave ratio from observed "
             "per-pool bandwidth counters",
    )
    p_tune.add_argument("--workload", "-w", required=True)
    p_tune.add_argument("--dataset", "-d", default="default")
    p_tune.add_argument("--topology", "-t", default="baseline",
                        choices=sorted(TOPOLOGIES))
    p_tune.add_argument("--engine", default="throughput",
                        choices=("throughput", "detailed", "banked"))
    p_tune.add_argument("--epochs", type=int, default=16,
                        help="controller epochs (>= 2)")
    p_tune.add_argument("--accesses", "-n", type=int, default=60_000,
                        help="raw trace length")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--cache-dir", default=None,
                        help="profile store root (default: "
                             f"{describe_default()})")
    p_tune.add_argument("--no-save", action="store_true",
                        help="don't persist the tuned profile")
    p_tune.set_defaults(fn=cmd_autotune)

    p_cmp = sub.add_parser("compare", help="compare policies")
    common(p_cmp, multi_workload=True)
    p_cmp.add_argument("--policies", "--policy", "-p", nargs="+",
                       default=["LOCAL", "INTERLEAVE", "BW-AWARE"])
    runner_options(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_fig = sub.add_parser("figure",
                           help="regenerate a paper figure/table")
    p_fig.add_argument("name",
                       help="experiment module, e.g. fig03_ratio_sweep")
    p_fig.add_argument("--chart", action="store_true",
                       help="render line figures as an ASCII chart")
    runner_options(p_fig)
    p_fig.set_defaults(fn=cmd_figure)

    p_prof = sub.add_parser("profile",
                            help="profile a workload (Section 5.1)")
    p_prof.add_argument("--workload", "-w", required=True)
    p_prof.add_argument("--dataset", "-d", default="default")
    p_prof.add_argument("--accesses", "-n", type=int, default=None)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.set_defaults(fn=cmd_profile)

    p_cal = sub.add_parser(
        "calibrate",
        help="score measured headline numbers against the paper",
    )
    p_cal.add_argument("--workloads", "-w", nargs="*", default=None)
    p_cal.set_defaults(fn=cmd_calibrate)

    p_bench = sub.add_parser(
        "bench",
        help="time the vectorized hot paths against the reference "
             "loops and write a BENCH_<rev>.json report",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke mode: one workload, short "
                              "trace, one repeat")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="best-of-N timing repeats "
                              "(default: 3, or 1 with --quick)")
    p_bench.add_argument("--accesses", "-n", type=int, default=None,
                         help="raw trace length "
                              "(default: 240000, or 60000 with --quick)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", "-o", default=None,
                         help="report path (default: BENCH_<rev>.json)")
    p_bench.add_argument("--skip-cold", action="store_true",
                         help="skip the fresh-interpreter cold run")
    p_bench.add_argument("--skip-runner", action="store_true",
                         help="skip the runner-overhead sweep bench")
    p_bench.add_argument("--check-against", default=None,
                         help="baseline BENCH_*.json to compare against")
    p_bench.add_argument("--max-regression", type=float, default=3.0,
                         help="fail if any vectorized timing exceeds "
                              "the baseline by more than this factor")
    trace_option(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_trace = sub.add_parser("trace",
                             help="synthesize and save a trace (.npz)")
    p_trace.add_argument("--workload", "-w", required=True)
    p_trace.add_argument("--dataset", "-d", default="default")
    p_trace.add_argument("--accesses", "-n", type=int, default=None)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", "-o", required=True)
    p_trace.set_defaults(fn=cmd_trace)

    p_ing = sub.add_parser(
        "ingest",
        help="validate and register external DRAMSim2 trace files "
             "(k6/mase); rejects are quarantined, exit 1 if any",
    )
    p_ing.add_argument("files", nargs="+", metavar="FILE",
                       help="trace file(s): '<address> <command> "
                            "<cycle>' lines")
    p_ing.add_argument("--name", default=None,
                       help="registry name (single file only; default: "
                            "sanitized file stem)")
    p_ing.add_argument("--format", choices=("k6", "mase"), default=None,
                       help="trace dialect (default: inferred from the "
                            "k6*/mase* filename prefix)")
    p_ing.add_argument("--cache-dir", default=None,
                       help="cache root holding the trace registry "
                            f"(default: {describe_default()})")
    p_ing.add_argument("--max-bytes", type=int, default=None,
                       help="reject inputs larger than this many bytes")
    p_ing.add_argument("--max-lines", type=int, default=None,
                       help="reject inputs with more lines than this")
    p_ing.add_argument("--max-pages", type=int, default=None,
                       help="reject traces touching more distinct "
                            "pages than this")
    p_ing.add_argument("--deadline", type=float, default=None,
                       help="wall-clock parse budget in seconds")
    p_ing.set_defaults(fn=cmd_ingest)

    p_mix = sub.add_parser(
        "mix",
        help="co-schedule 2-4 ingested traces as one cycle-interleaved "
             "workload with per-member fault isolation",
    )
    p_mix.add_argument("members", nargs="+", metavar="TRACE",
                       help="ingested trace names (with or without the "
                            "'trace:' prefix / '#<sha>' fragment)")
    p_mix.add_argument("--policies", "--policy", "-p", nargs="+",
                       default=["LOCAL", "INTERLEAVE", "BW-AWARE"])
    p_mix.add_argument("--topology", "-t", default="baseline",
                       choices=sorted(TOPOLOGIES))
    p_mix.add_argument("--capacity", "-c", type=float, default=None,
                       help="BO capacity as a fraction of the footprint")
    p_mix.add_argument("--seed", type=int, default=0)
    runner_options(p_mix)
    p_mix.set_defaults(fn=cmd_mix)

    from repro.serve.config import DEFAULT_HOST, DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve",
        help="run the placement-as-a-service daemon (HTTP/JSON)",
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="bind port (0 picks a free one)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="result cache root (default: "
                              f"{describe_default()})")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache")
    p_serve.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes per simulate job")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="threads draining the simulate queue")
    p_serve.add_argument("--max-pending", type=int, default=8,
                         help="distinct in-flight simulate jobs before "
                              "429 backpressure")
    p_serve.add_argument("--timeout", type=float, default=120.0,
                         help="per-request timeout in seconds")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="placement micro-batch collection window")
    p_serve.add_argument("--breaker-threshold", type=int, default=5,
                         help="consecutive simulate failures before "
                              "the circuit breaker opens (fast 503)")
    p_serve.add_argument("--breaker-reset", type=float, default=30.0,
                         help="seconds the breaker stays open before "
                              "half-open probes are admitted")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds graceful shutdown waits for "
                              "in-flight jobs")
    p_serve.add_argument("--chunk-timeout", type=float, default=None,
                         help="runner per-chunk wall-clock budget in "
                              "seconds (default: $REPRO_CHUNK_TIMEOUT "
                              "or off)")
    p_serve.add_argument("--max-retries", type=int, default=None,
                         help="runner retry budget per spec "
                              "(default: $REPRO_MAX_RETRIES or 2)")
    p_serve.add_argument("--shm", dest="shm", action="store_true",
                         default=None,
                         help="force shared-memory trace shipping for "
                              "the daemon's runner (default: "
                              "$REPRO_SHM, or automatic when "
                              "--jobs > 1)")
    p_serve.add_argument("--no-shm", dest="shm", action="store_false",
                         help="disable shared-memory trace shipping")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="worker-daemon shards behind a front "
                              "router (0/unset = single daemon; "
                              "$REPRO_SERVE_SHARDS)")
    p_serve.add_argument("--queue-limit", type=int, default=None,
                         help="router admission queue capacity "
                              "($REPRO_SERVE_QUEUE_LIMIT)")
    p_serve.add_argument("--high-watermark", type=int, default=None,
                         help="queued depth that starts shedding cold "
                              "work ($REPRO_SERVE_HIGH_WATERMARK)")
    p_serve.add_argument("--low-watermark", type=int, default=None,
                         help="queued depth that stops shedding again "
                              "($REPRO_SERVE_LOW_WATERMARK)")
    p_serve.add_argument("--shard-inflight", type=int, default=None,
                         help="concurrent proxied requests per shard "
                              "($REPRO_SERVE_SHARD_INFLIGHT)")
    p_serve.add_argument("--pin-cores", dest="pin_cores",
                         action="store_true", default=None,
                         help="pin runner workers to their own core "
                              "groups (default: $REPRO_PIN_CORES or "
                              "off)")
    trace_option(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_req = sub.add_parser(
        "request",
        help="issue one request against a running daemon",
    )
    req_sub = p_req.add_subparsers(dest="endpoint", required=True)

    def req_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=None,
                       help="daemon base URL (default: $REPRO_SERVE_URL "
                            "or http://127.0.0.1:8077)")
        p.add_argument("--timeout", type=float, default=300.0)
        trace_option(p)
        p.set_defaults(fn=cmd_request)

    r_health = req_sub.add_parser("health", help="GET /healthz")
    req_common(r_health)

    r_metrics = req_sub.add_parser("metrics", help="GET /metrics")
    req_common(r_metrics)

    r_place = req_sub.add_parser(
        "placement", help="POST /v1/placement (GetAllocation hints)")
    r_place.add_argument("--sizes", required=True,
                         help="comma-separated allocation sizes in bytes")
    r_place.add_argument("--hotness", required=True,
                         help="comma-separated hotness values")
    r_place.add_argument("--bo-capacity", type=int, required=True,
                         help="BO pool capacity in bytes")
    r_place.add_argument("--topology", "-t", default=None,
                         choices=sorted(TOPOLOGIES))
    req_common(r_place)

    r_sim = req_sub.add_parser(
        "simulate", help="POST /v1/simulate (experiment via runner)")
    r_sim.add_argument("--workload", "-w", required=True)
    r_sim.add_argument("--policy", "-p", default="BW-AWARE")
    r_sim.add_argument("--dataset", "-d", default="default")
    r_sim.add_argument("--topology", "-t", default=None,
                       choices=sorted(TOPOLOGIES))
    r_sim.add_argument("--capacity", "-c", type=float, default=None)
    r_sim.add_argument("--accesses", "-n", type=int, default=None)
    r_sim.add_argument("--seed", type=int, default=0)
    r_sim.add_argument("--engine", default="throughput",
                       choices=("throughput", "detailed", "banked"))
    r_sim.add_argument("--retries", type=int, default=0,
                       help="retry count for 429 backpressure")
    req_common(r_sim)

    r_prof = req_sub.add_parser(
        "profile", help="GET /v1/profile/<workload>")
    r_prof.add_argument("--workload", "-w", required=True)
    r_prof.add_argument("--dataset", "-d", default="default")
    r_prof.add_argument("--accesses", "-n", type=int, default=None)
    r_prof.add_argument("--seed", type=int, default=0)
    req_common(r_prof)

    p_load = sub.add_parser(
        "loadtest",
        help="closed-loop load generator against a running daemon "
             "or cluster (per-lane QPS/p50/p99 JSON report)")
    p_load.add_argument("--url", default=None,
                        help="target base URL (default "
                             "$REPRO_SERVE_URL or the local daemon)")
    p_load.add_argument("--duration", type=float, default=10.0,
                        help="seconds to drive load for")
    p_load.add_argument("--placement-workers", type=int, default=4,
                        help="closed-loop placement worker threads")
    p_load.add_argument("--simulate-workers", type=int, default=0,
                        help="closed-loop simulate worker threads")
    p_load.add_argument("--distinct", type=int, default=4,
                        help="distinct simulate specs (seeds) cycled "
                             "by the simulate workers")
    p_load.add_argument("--workload", "-w", default="bfs")
    p_load.add_argument("--accesses", "-n", type=int, default=20_000,
                        help="trace accesses per simulate spec")
    p_load.add_argument("--seed-base", type=int, default=1000)
    p_load.add_argument("--timeout", type=float, default=60.0,
                        help="per-request client timeout in seconds")
    p_load.add_argument("--out", default=None,
                        help="write the JSON report here")
    p_load.set_defaults(fn=cmd_loadtest)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.fn(args)
    tracer = obs_trace.install(trace_path)
    try:
        return args.fn(args)
    finally:
        obs_trace.uninstall()
        tracer.export()
        print(f"wrote trace to {trace_path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
