"""Extension: BW-AWARE generalization to three memory technologies.

Section 3.1: "BW-AWARE placement will generalize to an optimal policy
where there are more than two technologies by placing pages in the
bandwidth ratio of all memory pools."  This extension runs the suite on
an HBM + GDDR5 + DDR4 system and checks that

* BW-AWARE (SBIT-driven, no code changes) beats LOCAL, INTERLEAVE and
  every two-pool restriction of itself;
* the achieved traffic split matches the three-way bandwidth ratio.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.memory.topology import three_pool_topology
from repro.policies.bwaware import BwAwarePolicy
from repro.runner import canonical_policy
from repro.workloads.base import TraceWorkload

#: columns: the Linux policies, SBIT BW-AWARE, and two-pool ablations
#: that ignore one of the three technologies.
COLUMNS = ("LOCAL", "INTERLEAVE", "BW-AWARE", "HBM+GDDR-only",
           "HBM+DDR-only")


def run_three_pool(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                   = None) -> TableResult:
    """Per-workload throughput on the 3-pool system vs LOCAL."""
    picked = resolve_workloads(workloads)
    topo = three_pool_topology()
    fractions = np.array(topo.bandwidth_fractions())

    def two_pool(drop_zone: int) -> BwAwarePolicy:
        masked = fractions.copy()
        masked[drop_zone] = 0.0
        masked /= masked.sum()
        return BwAwarePolicy(fractions=tuple(masked))

    policy_specs = {
        "LOCAL": "LOCAL",
        "INTERLEAVE": "INTERLEAVE",
        "BW-AWARE": "BW-AWARE",
        # Canonical spec strings; workers build fresh policy objects
        # per run, so no BwAwarePolicy state leaks between cells.
        "HBM+GDDR-only": canonical_policy(two_pool(2)),
        "HBM+DDR-only": canonical_policy(two_pool(1)),
    }
    rows = []
    by_column: dict[str, list[float]] = {c: [] for c in COLUMNS}
    split_errors = []
    results = iter(sweep([
        spec(workload, policy_specs[column], topology=topo)
        for workload in picked for column in COLUMNS
    ]))
    for workload in picked:
        raw = {column: next(results) for column in COLUMNS}
        local = raw["LOCAL"].throughput
        normalized = tuple(raw[c].throughput / local for c in COLUMNS)
        for column, value in zip(COLUMNS, normalized):
            by_column[column].append(value)
        rows.append((workload.name, normalized))
        placed = np.array(raw["BW-AWARE"].placement_fractions())
        split_errors.append(float(np.abs(placed - fractions).max()))
    notes = {
        "bwaware_vs_local": geomean(by_column["BW-AWARE"]),
        "bwaware_vs_interleave": geomean(
            b / i for b, i in zip(by_column["BW-AWARE"],
                                  by_column["INTERLEAVE"])
        ),
        "bwaware_vs_best_two_pool": geomean(
            b / max(g, d) for b, g, d in zip(by_column["BW-AWARE"],
                                             by_column["HBM+GDDR-only"],
                                             by_column["HBM+DDR-only"])
        ),
        "max_split_error": max(split_errors),
    }
    return TableResult(
        figure_id="ext-three-pool",
        title="three-technology system (HBM+GDDR5+DDR4) vs LOCAL",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run_three_pool().render())


if __name__ == "__main__":
    main()
