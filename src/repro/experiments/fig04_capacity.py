"""Figure 4: BW-AWARE performance as the BO pool shrinks.

The paper shrinks bandwidth-optimized capacity relative to the
application footprint and shows BW-AWARE holds near-peak performance
down to ~70% (it only ever wants 70% of pages in BO), then falls off as
spilled pages push the service ratio away from optimal.  Programmers
gain ~30% "free" effective capacity by exploiting CO memory.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.workloads.base import TraceWorkload

DEFAULT_FRACTIONS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1)


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        fractions: Sequence[float] = DEFAULT_FRACTIONS) -> FigureResult:
    """BW-AWARE throughput vs BO capacity (fraction of footprint),
    normalized per workload to the unconstrained run."""
    picked = resolve_workloads(workloads)
    specs = []
    for workload in picked:
        specs.append(spec(workload, "BW-AWARE"))
        specs.extend(
            spec(workload, "BW-AWARE", bo_capacity_fraction=fraction)
            for fraction in fractions
        )
    results = iter(sweep(specs))
    series = []
    per_fraction: dict[float, list[float]] = {f: [] for f in fractions}
    for workload in picked:
        unconstrained = next(results).throughput
        ys = []
        for fraction in fractions:
            value = next(results).throughput
            ys.append(value / unconstrained)
            per_fraction[fraction].append(value / unconstrained)
        series.append(Series(
            label=workload.name, x=tuple(fractions), y=tuple(ys)
        ))
    series.append(Series(
        label="geomean",
        x=tuple(fractions),
        y=tuple(geomean(per_fraction[f]) for f in fractions),
    ))
    mean = series[-1]
    notes = {
        "geomean_at_70pct": mean.y_at(0.7) if 0.7 in fractions else 0.0,
        "geomean_at_10pct": mean.y_at(0.1) if 0.1 in fractions else 0.0,
    }
    return FigureResult(
        figure_id="fig4",
        title="BW-AWARE performance vs BO capacity / footprint",
        x_label="BO capacity fraction",
        y_label="performance vs unconstrained",
        series=tuple(series),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
