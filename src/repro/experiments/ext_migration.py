"""Extension: online page migration vs static placement (Section 5.5).

The paper declines to build dynamic migration, arguing (a) measured
software migration moves pages at only a few GB/s with microsecond
re-use stalls, and (b) good *initial* placement removes most of the
need.  This extension makes that argument quantitative: starting from a
deliberately bad initial placement (everything in CO memory), an online
migrator with oracle-shaped targeting is simulated under a sweep of
migration costs, against three static references:

* static BW-AWARE (the paper's proposal, no tracking needed),
* static ORACLE (the upper bound of initial placement),
* the same migrator at zero cost (the upper bound of *any* migration).

At the paper's measured costs the migrator loses badly on our short
(hundred-microsecond) executions; as the per-page cost is scaled down —
equivalently, as execution time grows to amortize it — migration from a
bad start approaches the oracle.  The crossover cost scale is reported.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.report import FigureResult, Series
from repro.core.experiment import constrained_topology
from repro.experiments.common import EXP_ACCESSES, EXP_SEED, run
from repro.memory.topology import simulated_baseline
from repro.migration.cost import MigrationCostModel, scaled_migration
from repro.migration.engine import MigrationSimulator
from repro.migration.policy import EpochMigrationPolicy
from repro.workloads.suite import get_workload

DEFAULT_COST_SCALES = (1.0, 0.1, 0.01, 0.001, 0.0)
DEFAULT_CAPACITY_FRACTION = 0.10


def scaled_cost(scale: float) -> MigrationCostModel:
    """The Section 5.5 cost model scaled by ``scale`` (0 = free).

    Kept as an alias of :func:`repro.migration.cost.scaled_migration`,
    which the ONLINE policy also uses — one definition of "scaled paper
    cost" across the whole tree.
    """
    return scaled_migration(scale)


def run_workload(name: str,
                 cost_scales: Sequence[float] = DEFAULT_COST_SCALES,
                 capacity_fraction: float = DEFAULT_CAPACITY_FRACTION,
                 n_epochs_budget: int | None = None) -> FigureResult:
    """Migration-vs-static comparison for one workload.

    Y values are throughput relative to static BW-AWARE at the same
    capacity constraint (1.0 = the paper's static proposal).
    """
    workload = get_workload(name)
    trace = workload.dram_trace(n_accesses=EXP_ACCESSES, seed=EXP_SEED)
    topology = constrained_topology(
        simulated_baseline(), trace.footprint_pages, capacity_fraction
    )
    chars = workload.characteristics()
    bo_capacity = topology.local.capacity_pages

    static_bw = run(workload, "BW-AWARE",
                    bo_capacity_fraction=capacity_fraction).throughput
    static_oracle = run(workload, "ORACLE",
                        bo_capacity_fraction=capacity_fraction).throughput

    all_co = np.ones(trace.footprint_pages, dtype=np.int16)
    migrated = []
    for scale in cost_scales:
        policy = EpochMigrationPolicy(
            bo_zone=topology.gpu_local_zone,
            co_zone=1,
            bo_capacity_pages=bo_capacity,
            bo_traffic_fraction=topology.bandwidth_fractions()[0],
            budget_pages_per_epoch=n_epochs_budget,
        )
        simulator = MigrationSimulator(topology,
                                       cost_model=scaled_cost(scale))
        result = simulator.run(trace, all_co, chars, policy)
        migrated.append(result.throughput / static_bw)

    xs = tuple(float(s) for s in cost_scales)
    series = (
        Series("migrate-from-all-CO", xs, tuple(migrated)),
        Series("static-BW-AWARE", xs, tuple(1.0 for _ in xs)),
        Series("static-ORACLE", xs,
               tuple(static_oracle / static_bw for _ in xs)),
    )
    crossover = next(
        (x for x, y in zip(xs, migrated) if y >= 1.0), float("nan")
    )
    return FigureResult(
        figure_id=f"ext-migration[{name}]",
        title=("online migration vs static placement, "
               f"{capacity_fraction:.0%} BO capacity"),
        x_label="migration cost scale (1.0 = paper measured)",
        y_label="throughput vs static BW-AWARE",
        series=series,
        notes={"crossover_cost_scale": crossover,
               "oracle_vs_bwaware": static_oracle / static_bw},
    )


def main() -> None:
    for name in ("xsbench", "bfs"):
        print(run_workload(name).render())
        print()


if __name__ == "__main__":
    main()
