"""Table 1: the simulated system configuration.

Regenerates the paper's configuration table from the live objects —
every number below is read from :func:`repro.gpu.config.table1_config`
and :func:`repro.memory.topology.simulated_baseline`, so the table can
never drift from what the simulator actually runs.
"""

from __future__ import annotations

from repro.core.units import KIB
from repro.gpu.config import GpuConfig, table1_config
from repro.memory.topology import SystemTopology, simulated_baseline


def run(config: GpuConfig | None = None,
        topology: SystemTopology | None = None) -> dict[str, str]:
    """The Table 1 rows as an ordered mapping."""
    config = config if config is not None else table1_config()
    topology = topology if topology is not None else simulated_baseline()
    local = topology.local
    remote = [z for z in topology if z.zone_id != local.zone_id][0]
    timings = local.technology.timings
    return {
        "Simulator": "repro trace-driven (GPGPU-Sim 3.x in the paper)",
        "GPU Arch": config.name,
        "GPU Cores": f"{config.n_sms} SMs @ {config.clock_ghz}Ghz",
        "L1 Caches": f"{config.l1_bytes_per_sm // KIB}kB/SM",
        "L2 Caches": (f"Memory Side "
                      f"{config.l2_bytes_per_channel // KIB}kB/DRAM "
                      "Channel"),
        "L2 MSHRs": f"{config.mshrs_per_l2_slice} Entries/L2 Slice",
        "GPU-Local": (f"{local.technology.name} {local.channels}-channels, "
                      f"{local.bandwidth_gbps:.0f}GB/sec aggregate"),
        "GPU-Remote": (f"{remote.technology.name} "
                       f"{remote.channels}-channels, "
                       f"{remote.bandwidth_gbps:.0f}GB/sec aggregate"),
        "DRAM Timings": (f"RCD={timings.t_rcd},RP={timings.t_rp},"
                         f"RC={timings.t_rc},CL={timings.t_cl},"
                         f"WR={timings.t_wr}"),
        "GPU-CPU Interconnect Latency": f"{remote.hop_cycles} GPU core cycles",
    }


def render(table: dict[str, str] | None = None) -> str:
    table = table if table is not None else run()
    width = max(len(key) for key in table)
    lines = ["Table 1: simulation environment and system configuration"]
    for key, value in table.items():
        lines.append(f"  {key:<{width}}  {value}")
    return "\n".join(lines)


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
