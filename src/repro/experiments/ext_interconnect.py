"""Extension: when the interconnect, not the DRAM, limits placement.

The paper assumes a cache-coherent fabric that never caps remote
traffic (Table 1's 100-cycle hop is latency-only) — reasonable for
NVLink-class links, but PCIe-attached GPUs see 16-32 GB/s.  This
extension sweeps the GPU-CPU link bandwidth and shows:

* BW-AWARE's gain over LOCAL collapses as the link shrinks below the
  CO pool bandwidth — with a 16 GB/s link the remote pool is barely
  worth using;
* a link-aware SBIT (reporting ``min(pool, link)``, which our firmware
  enumeration does) keeps BW-AWARE from oversubscribing the link: the
  policy degrades gracefully toward LOCAL instead of below it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.memory.topology import link_limited_baseline
from repro.workloads.base import TraceWorkload

#: GB/s sweep: PCIe3 x16, PCIe4 x16, NVLink1, NVLink2-class, unbound.
DEFAULT_LINKS_GBPS = (16.0, 32.0, 80.0, 150.0, 1000.0)


def run_links(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
              = None,
              links_gbps: Sequence[float] = DEFAULT_LINKS_GBPS
              ) -> FigureResult:
    """Geomean speedup of INTERLEAVE/BW-AWARE over LOCAL per link."""
    picked = resolve_workloads(workloads)
    policies = ("INTERLEAVE", "BW-AWARE")
    ys = {policy: [] for policy in policies}
    topologies = {link: link_limited_baseline(link)
                  for link in links_gbps}
    results = iter(sweep([
        spec(workload, policy, topology=topologies[link])
        for link in links_gbps
        for workload in picked
        for policy in ("LOCAL",) + policies
    ]))
    for link in links_gbps:
        ratios = {policy: [] for policy in policies}
        for workload in picked:
            local = next(results).throughput
            for policy in policies:
                ratios[policy].append(next(results).throughput / local)
        for policy in policies:
            ys[policy].append(geomean(ratios[policy]))
    xs = tuple(float(l) for l in links_gbps)
    series = (
        Series("LOCAL", xs, tuple(1.0 for _ in xs)),
        Series("INTERLEAVE", xs, tuple(ys["INTERLEAVE"])),
        Series("BW-AWARE", xs, tuple(ys["BW-AWARE"])),
    )
    return FigureResult(
        figure_id="ext-interconnect",
        title="policy gain vs GPU-CPU link bandwidth",
        x_label="link bandwidth GB/s",
        y_label="geomean speedup vs LOCAL",
        series=series,
        notes={
            "bwaware_at_pcie3": ys["BW-AWARE"][0],
            "bwaware_unbound": ys["BW-AWARE"][-1],
        },
    )


def main() -> None:
    print(run_links().render())


if __name__ == "__main__":
    main()
