"""Figure 8: oracle vs BW-AWARE, unconstrained and capacity constrained.

Two regimes per workload:

* unconstrained: the oracle only matches BW-AWARE — both achieve the
  ideal bandwidth split, the oracle just uses fewer BO pages;
* 10% BO capacity: the oracle packs the hottest pages into the scarce
  BO pool and can nearly double BW-AWARE on skewed-CDF workloads,
  recovering on average ~60% of unconstrained throughput.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.workloads.base import TraceWorkload

DEFAULT_CAPACITY_FRACTION = 0.10

COLUMNS = ("BW-AWARE", "ORACLE", "BW-AWARE-10%", "ORACLE-10%")


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        capacity_fraction: float = DEFAULT_CAPACITY_FRACTION
        ) -> TableResult:
    """Per-workload throughput of the four configs, normalized to
    unconstrained BW-AWARE."""
    picked = resolve_workloads(workloads)
    rows = []
    columns_values: dict[str, list[float]] = {c: [] for c in COLUMNS}
    label_constrained_bw = COLUMNS[2]
    label_constrained_or = COLUMNS[3]
    results = iter(sweep([
        one
        for workload in picked
        for one in (
            spec(workload, "BW-AWARE"),
            spec(workload, "ORACLE"),
            spec(workload, "BW-AWARE",
                 bo_capacity_fraction=capacity_fraction),
            spec(workload, "ORACLE",
                 bo_capacity_fraction=capacity_fraction),
        )
    ]))
    for workload in picked:
        unconstrained_bw = next(results).throughput
        values = {
            "BW-AWARE": 1.0,
            "ORACLE": next(results).throughput / unconstrained_bw,
            label_constrained_bw: next(results).throughput
            / unconstrained_bw,
            label_constrained_or: next(results).throughput
            / unconstrained_bw,
        }
        for column in COLUMNS:
            columns_values[column].append(values[column])
        rows.append((workload.name, tuple(values[c] for c in COLUMNS)))
    notes = {
        "oracle10_vs_bwaware10": geomean(
            o / b for o, b in zip(columns_values[label_constrained_or],
                                  columns_values[label_constrained_bw])
        ),
        "oracle10_vs_unconstrained": geomean(
            columns_values[label_constrained_or]
        ),
    }
    return TableResult(
        figure_id="fig8",
        title=(f"oracle vs BW-AWARE, unconstrained and "
               f"{capacity_fraction:.0%} BO capacity (vs BW-AWARE)"),
        columns=COLUMNS,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
