"""Figure 1: BW-ratio of bandwidth- vs capacity-optimized memory.

The paper's opening figure surveys likely HPC, desktop and mobile
systems and plots the ratio of BO to CO pool bandwidth — from ~2.5x for
a GDDR5+DDR4 desktop up to ~12.5x for a 4-stack-HBM HPC node.  The
regenerator tabulates the same three system classes from
:mod:`repro.memory.topology`.
"""

from __future__ import annotations

from repro.analysis.report import TableResult
from repro.memory.topology import figure1_systems


def run() -> TableResult:
    """Tabulate BO/CO bandwidths and their ratio per system class."""
    rows = []
    for topology in figure1_systems():
        bo = sum(z.bandwidth_gbps for z in topology.bo_zones())
        co = sum(z.bandwidth_gbps for z in topology.co_zones())
        rows.append((topology.name, (bo, co, topology.bw_ratio())))
    return TableResult(
        figure_id="fig1",
        title="BW-Ratio of high-bandwidth vs high-capacity memories",
        columns=("BO GB/s", "CO GB/s", "BW ratio"),
        rows=tuple(rows),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
