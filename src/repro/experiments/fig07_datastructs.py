"""Figure 7: CDF vs virtual-address layout for bfs, mummergpu, needle.

The paper overlays each workload's hot-to-cold CDF with the virtual
address (and owning data structure) of every sorted page, showing that

* bfs (7a): three structures (d_graph_visited, d_updating_graph_mask,
  d_cost) carry ~80% of traffic in ~20% of the footprint;
* mummergpu (7b): hotness is not structure-aligned, and some allocated
  ranges are never accessed;
* needle (7c): hotness varies *within* one structure (linear-ish CDF).

The regenerator produces, per workload, the per-structure traffic
shares plus the scatter series behind the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.common import EXP_ACCESSES, EXP_SEED
from repro.profiling.datastruct_map import DataStructureMap, ScatterPoint
from repro.profiling.profiler import PageAccessProfiler, WorkloadProfile
from repro.workloads.suite import get_workload

FIGURE7_WORKLOADS = ("bfs", "mummergpu", "needle")


@dataclass(frozen=True)
class StructureBreakdown:
    """Figure 7 data for one workload."""

    workload: str
    profile: WorkloadProfile
    traffic_shares: Mapping[str, float]
    footprint_shares: Mapping[str, float]
    scatter: tuple[ScatterPoint, ...]
    never_accessed_pages: int

    def hottest_structures(self, traffic_threshold: float = 0.8
                           ) -> tuple[str, ...]:
        """Smallest structure set covering the traffic threshold."""
        picked, covered = [], 0.0
        for name, share in sorted(self.traffic_shares.items(),
                                  key=lambda kv: -kv[1]):
            picked.append(name)
            covered += share
            if covered >= traffic_threshold:
                break
        return tuple(picked)

    def footprint_of(self, structures: Sequence[str]) -> float:
        """Combined footprint share of a structure set."""
        return sum(self.footprint_shares[name] for name in structures)

    def render(self) -> str:
        lines = [f"fig7[{self.workload}]: traffic vs footprint by structure"]
        header = f"{'structure':>24} {'traffic':>9} {'footprint':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for name, share in sorted(self.traffic_shares.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(
                f"{name:>24} {share:>9.3f} "
                f"{self.footprint_shares[name]:>10.3f}"
            )
        lines.append(
            f"never-accessed pages: {self.never_accessed_pages} of "
            f"{self.profile.footprint_pages}"
        )
        return "\n".join(lines)


def breakdown(workload_name: str, dataset: str = "default",
              trace_accesses: int = EXP_ACCESSES,
              seed: int = EXP_SEED) -> StructureBreakdown:
    """Compute the Figure 7 overlay data for one workload."""
    workload = get_workload(workload_name)
    profile = PageAccessProfiler().profile(
        workload, dataset, n_accesses=trace_accesses, seed=seed
    )
    ranges = workload.page_ranges(dataset)
    mapping = DataStructureMap(ranges)
    total_pages = workload.footprint_pages(dataset)
    return StructureBreakdown(
        workload=workload.name,
        profile=profile,
        traffic_shares=mapping.traffic_by_structure(profile),
        footprint_shares={
            name: len(pages) / total_pages
            for name, pages in ranges.items()
        },
        scatter=mapping.scatter(profile),
        never_accessed_pages=profile.never_accessed_pages(),
    )


def run(workloads: Sequence[str] = FIGURE7_WORKLOADS
        ) -> dict[str, StructureBreakdown]:
    """Figure 7 for the paper's three case-study workloads."""
    return {name: breakdown(name) for name in workloads}


def main() -> None:
    for name, result in run().items():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
