"""Extension: CPU co-tenancy on the capacity-optimized pool.

In a CC-NUMA system the CPU keeps using "its" DDR while the GPU
borrows bandwidth from it; Section 3.1 anticipates this by allowing
the BW-AWARE ratio to be "dynamically determined by the GPU runtime at
execution time" rather than read from static firmware tables.  This
extension models a co-running CPU consuming part of the CO pool and
compares:

* LOCAL — immune to the contention (never touches CO);
* BW-AWARE (static 30C-70B) — the firmware-table ratio, oblivious to
  the CPU, keeps sending 30% of traffic to a shrinking pool;
* BW-AWARE (adaptive) — re-derives the ratio from the *available* CO
  bandwidth, shifting traffic back toward the GPU pool as the CPU
  claims its share.

The gap between the static and adaptive lines is the value of dynamic
bandwidth discovery.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.core.metrics import geomean
from repro.core.units import gbps
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.memory.topology import SystemTopology, simulated_baseline
from repro.runner import bw_ratio_policy
from repro.workloads.base import TraceWorkload

#: CPU bandwidth consumption on the 80 GB/s CO pool, GB/s.
DEFAULT_CPU_LOADS = (0.0, 20.0, 40.0, 60.0, 72.0)


def contended_topology(cpu_load_gbps: float) -> SystemTopology:
    """The baseline system with the CPU consuming CO bandwidth.

    The pool physically keeps its bandwidth; the share available to
    GPU traffic shrinks.  We model that as a reduced effective CO
    bandwidth, which also updates the SBIT the adaptive policy reads.
    """
    base = simulated_baseline()
    co = base.zone(1)
    available = co.bandwidth - gbps(cpu_load_gbps)
    if available <= 0:
        raise ValueError("CPU load exceeds the CO pool bandwidth")
    return base.replace_zone(co.rescaled_bandwidth(available))


def run_contention(workloads: Optional[Sequence[Union[str,
                                                      TraceWorkload]]]
                   = None,
                   cpu_loads_gbps: Sequence[float] = DEFAULT_CPU_LOADS
                   ) -> FigureResult:
    """Geomean speedup over LOCAL vs CPU load on the CO pool."""
    picked = resolve_workloads(workloads)
    static_policy_label = "BW-AWARE-static-30C"
    adaptive_label = "BW-AWARE-adaptive"
    ys = {static_policy_label: [], adaptive_label: []}
    topologies = {load: contended_topology(load)
                  for load in cpu_loads_gbps}
    policies = ("LOCAL", bw_ratio_policy(30), "BW-AWARE")
    results = iter(sweep([
        spec(workload, policy, topology=topologies[load])
        for load in cpu_loads_gbps
        for workload in picked
        for policy in policies
    ]))
    for load in cpu_loads_gbps:
        static_ratios, adaptive_ratios = [], []
        for workload in picked:
            local = next(results).throughput
            static_ratios.append(next(results).throughput / local)
            adaptive_ratios.append(next(results).throughput / local)
        ys[static_policy_label].append(geomean(static_ratios))
        ys[adaptive_label].append(geomean(adaptive_ratios))
    xs = tuple(float(l) for l in cpu_loads_gbps)
    series = (
        Series("LOCAL", xs, tuple(1.0 for _ in xs)),
        Series(static_policy_label, xs, tuple(ys[static_policy_label])),
        Series(adaptive_label, xs, tuple(ys[adaptive_label])),
    )
    notes = {
        "adaptive_vs_static_at_max_load": (
            ys[adaptive_label][-1] / ys[static_policy_label][-1]
        ),
    }
    return FigureResult(
        figure_id="ext-cpu-contention",
        title="BW-AWARE under CPU co-tenancy on the CO pool",
        x_label="CPU load on CO pool (GB/s)",
        y_label="geomean speedup vs LOCAL",
        series=series,
        notes=notes,
    )


def main() -> None:
    print(run_contention().render())


if __name__ == "__main__":
    main()
