"""Figure 6: bandwidth CDFs with pages sorted hot to cold.

For every workload, sort 4 kB pages by post-cache access count and plot
cumulative traffic against cumulative footprint.  Skewed workloads
(bfs, xsbench: >60% of traffic from ~10% of pages) are the ones where
hotness-aware placement beats BW-AWARE under capacity pressure;
linear-CDF workloads (hotspot, lbm, needle) have no such headroom.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.experiments.common import EXP_ACCESSES, EXP_SEED, resolve_workloads
from repro.profiling.cdf import AccessCdf
from repro.workloads.base import TraceWorkload

DEFAULT_POINTS = 20


def workload_cdf(workload: TraceWorkload, dataset: str = "default",
                 trace_accesses: int = EXP_ACCESSES,
                 seed: int = EXP_SEED) -> AccessCdf:
    """The page-access CDF of one workload's default trace."""
    trace = workload.dram_trace(dataset, n_accesses=trace_accesses,
                                seed=seed)
    return AccessCdf.from_counts(trace.page_access_counts())


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        n_points: int = DEFAULT_POINTS) -> FigureResult:
    """Downsampled CDF series per workload plus skew notes."""
    picked = resolve_workloads(workloads)
    series = []
    notes = {}
    # A common x grid so every series lands in one table.
    grid = tuple((i + 1) / n_points for i in range(n_points))
    for workload in picked:
        cdf = workload_cdf(workload)
        ys = tuple(cdf.traffic_at_footprint(x) for x in grid)
        series.append(Series(label=workload.name, x=grid, y=ys))
        notes[f"{workload.name}_top10"] = cdf.traffic_at_footprint(0.1)
    return FigureResult(
        figure_id="fig6",
        title="traffic CDF over pages sorted hot to cold",
        x_label="footprint fraction",
        y_label="cumulative traffic",
        series=tuple(series),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
