"""Extension: memory-system energy under each placement policy.

Section 2.1 motivates capacity-optimized pools on cost *and energy*
(DDR4 ~6 pJ/bit vs GDDR5 ~14 pJ/bit); related work (Wang et al.,
PACT'13) shows software placement into cheaper memory "offers improved
power efficiency".  This extension accounts DRAM + interconnect energy
for LOCAL / INTERLEAVE / BW-AWARE across the suite: BW-AWARE moves
~30% of traffic to the cheaper pool, so it wins on performance *and*
on DRAM pJ/byte, while the interconnect tax claws part of that back.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.energy import energy_report
from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.memory.topology import simulated_baseline
from repro.workloads.base import TraceWorkload

POLICIES = ("LOCAL", "INTERLEAVE", "BW-AWARE")


def run_energy(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
               = None) -> TableResult:
    """Per-workload memory pJ/byte for each policy, and perf/watt
    relative to LOCAL."""
    picked = resolve_workloads(workloads)
    topology = simulated_baseline()
    rows = []
    ratios = {policy: [] for policy in POLICIES}
    dram_ratios = {policy: [] for policy in POLICIES}
    perf_per_watt = {policy: [] for policy in POLICIES}
    outcomes = iter(sweep([
        spec(workload, policy)
        for workload in picked for policy in POLICIES
    ]))
    for workload in picked:
        values = []
        reports = {}
        results = {}
        for policy in POLICIES:
            result = next(outcomes)
            results[policy] = result
            reports[policy] = energy_report(result.sim, topology)
            values.append(reports[policy].pj_per_byte)
        local_report = reports["LOCAL"]
        local_power = (local_report.total_pj
                       / results["LOCAL"].sim.total_time_ns)
        for policy in POLICIES:
            report = reports[policy]
            ratios[policy].append(
                report.pj_per_byte / local_report.pj_per_byte
            )
            dram_ratios[policy].append(
                report.dram_pj_per_byte / local_report.dram_pj_per_byte
            )
            power = report.total_pj / results[policy].sim.total_time_ns
            perf_per_watt[policy].append(
                (results[policy].throughput / power)
                / (results["LOCAL"].throughput / local_power)
            )
        rows.append((workload.name, tuple(values)))
    notes = {
        "bwaware_pj_per_byte_vs_local": geomean(ratios["BW-AWARE"]),
        "bwaware_dram_pj_per_byte_vs_local": geomean(
            dram_ratios["BW-AWARE"]
        ),
        "bwaware_perf_per_watt_vs_local": geomean(
            perf_per_watt["BW-AWARE"]
        ),
        "interleave_pj_per_byte_vs_local": geomean(ratios["INTERLEAVE"]),
    }
    return TableResult(
        figure_id="ext-energy",
        title="memory-system energy per byte (pJ/B) by policy",
        columns=POLICIES,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run_energy().render())


if __name__ == "__main__":
    main()
