"""Figure 11: annotation robustness across input datasets.

Profile-driven optimization risks overfitting the training input.  The
paper trains annotations on one dataset and evaluates on others for the
four workloads with the largest oracle headroom (bfs, xsbench, minife,
mummergpu), finding annotated placement still beats INTERLEAVE by ~29%
and reaches ~80% of the per-dataset oracle.

For each (workload, test dataset) pair the regenerator compares:

* INTERLEAVE and BW-AWARE (application agnostic),
* ANNOTATED trained on the *first* (training) dataset,
* ORACLE with perfect knowledge of the *test* dataset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import spec, sweep
from repro.workloads.suite import CROSS_DATASET_WORKLOADS, get_workload

DEFAULT_CAPACITY_FRACTION = 0.10

POLICIES = ("INTERLEAVE", "BW-AWARE", "ANNOTATED", "ORACLE")


def run(workloads: Sequence[str] = CROSS_DATASET_WORKLOADS,
        capacity_fraction: float = DEFAULT_CAPACITY_FRACTION,
        include_training_dataset: bool = False) -> TableResult:
    """Cross-dataset comparison, normalized to INTERLEAVE per row.

    Rows are ``workload/dataset`` pairs; the training dataset (each
    workload's first) is excluded by default, matching the paper's
    "trained on the first data-set" methodology.
    """
    rows = []
    by_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
    cells = []
    for name in workloads:
        workload = get_workload(name)
        datasets = workload.datasets()
        training = datasets[0]
        tests = datasets if include_training_dataset else datasets[1:]
        if not tests:
            raise ValueError(
                f"workload {name} has no alternate datasets to test on"
            )
        cells.extend((name, dataset, training) for dataset in tests)
    results = iter(sweep([
        spec(name, policy, dataset=dataset,
             bo_capacity_fraction=capacity_fraction,
             training_dataset=(training if policy == "ANNOTATED"
                               else None))
        for name, dataset, training in cells
        for policy in POLICIES
    ]))
    for name, dataset, training in cells:
        raw = {policy: next(results).throughput for policy in POLICIES}
        baseline = raw["INTERLEAVE"]
        normalized = {p: raw[p] / baseline for p in POLICIES}
        for policy in POLICIES:
            by_policy[policy].append(normalized[policy])
        rows.append((f"{name}/{dataset}"[:12],
                     tuple(normalized[p] for p in POLICIES)))
    notes = {
        "annotated_vs_interleave": geomean(by_policy["ANNOTATED"]),
        "annotated_vs_bwaware": geomean(
            a / b for a, b in zip(by_policy["ANNOTATED"],
                                  by_policy["BW-AWARE"])
        ),
        "annotated_vs_oracle": geomean(
            a / o for a, o in zip(by_policy["ANNOTATED"],
                                  by_policy["ORACLE"])
        ),
    }
    return TableResult(
        figure_id="fig11",
        title=("annotation trained on dataset 1, tested on other "
               f"datasets at {capacity_fraction:.0%} BO capacity "
               "(vs INTERLEAVE)"),
        columns=POLICIES,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
