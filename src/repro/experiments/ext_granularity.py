"""Extension: placement granularity — 4 KiB pages vs huge pages.

The paper places (and profiles) at 4 kB granularity.  Real systems
increasingly use 64 KiB-2 MiB pages to cut TLB pressure, and coarser
blocks mix hot and cold data: the skewed CDFs that give the oracle its
2-3x win at 10% BO capacity flatten out when read at block granularity.
This study re-bins each workload's trace at growing block sizes and
measures the oracle's remaining advantage over blind BW-AWARE spilling
— quantifying how much of Section 4's opportunity survives huge pages.

Both policies are evaluated directly on the coarsened trace under the
same 10%-of-footprint BO budget: the oracle packs the hottest blocks,
the baseline takes an arbitrary 10% (what capacity-constrained
BW-AWARE/INTERLEAVE degenerate to).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.report import FigureResult, Series
from repro.core.units import PAGE_SIZE
from repro.experiments.common import EXP_ACCESSES, EXP_SEED
from repro.gpu.config import table1_config
from repro.gpu.throughput import ThroughputEngine
from repro.gpu.trace import DramTrace
from repro.memory.topology import simulated_baseline
from repro.workloads.suite import get_workload

#: pages per placement block.  Footprints are scaled by 1/8 (see
#: FOOTPRINT_SCALE), so factor 64 corresponds to ~2 MiB huge pages at
#: the benchmarks' native scale.
DEFAULT_BLOCK_FACTORS = (1, 4, 16, 64)

DEFAULT_WORKLOADS = ("bfs", "xsbench", "kmeans", "lbm")

CAPACITY_FRACTION = 0.10


def _simulate(trace: DramTrace, zone_map: np.ndarray,
              chars) -> float:
    engine = ThroughputEngine(table1_config())
    result = engine.run(trace, zone_map, simulated_baseline(), chars)
    return result.throughput


def _oracle_blocks(counts: np.ndarray, budget: int,
                   bw_fraction: float) -> np.ndarray:
    """Hottest blocks into BO until the bandwidth target or budget."""
    rng = np.random.default_rng(0)
    permutation = rng.permutation(counts.size)
    order = permutation[np.argsort(-counts[permutation], kind="stable")]
    total = counts.sum()
    take = counts.size
    if total > 0:
        cumulative = np.cumsum(counts[order])
        take = int(np.searchsorted(cumulative, bw_fraction * total)) + 1
    take = min(take, budget, counts.size)
    zone_map = np.ones(counts.size, dtype=np.int16)
    zone_map[order[:take]] = 0
    return zone_map


def _arbitrary_blocks(n_blocks: int, budget: int) -> np.ndarray:
    """An arbitrary 10% in BO: hotness-blind constrained placement."""
    rng = np.random.default_rng(1)
    zone_map = np.ones(n_blocks, dtype=np.int16)
    zone_map[rng.permutation(n_blocks)[:budget]] = 0
    return zone_map


def _workload_case(name: str):
    workload = get_workload(name)
    trace = workload.dram_trace(n_accesses=EXP_ACCESSES, seed=EXP_SEED)
    return trace, workload.characteristics()


def _scattered_hot_trace() -> tuple[DramTrace, object]:
    """A synthetic control whose hot pages are VA-scattered.

    The 19 benchmark models put hot data in contiguous structures (the
    very premise of structure-level annotation), so coarse blocks still
    separate hot from cold.  This control scatters the hot tenth of
    pages uniformly through the footprint — the worst case for huge
    pages — to expose the decay mechanism.
    """
    from repro.gpu.trace import WorkloadCharacteristics

    rng = np.random.default_rng(7)
    n_pages = 2048
    n_accesses = 120_000
    hot = rng.permutation(n_pages)[: n_pages // 10]
    pages = np.empty(n_accesses, dtype=np.int64)
    mask = rng.random(n_accesses) < 0.6
    pages[mask] = rng.choice(hot, size=int(mask.sum()))
    pages[~mask] = rng.integers(0, n_pages, size=int((~mask).sum()))
    trace = DramTrace(page_indices=pages, footprint_pages=n_pages,
                      n_raw_accesses=pages.size)
    return trace, WorkloadCharacteristics(parallelism=448.0)


def run_granularity(workloads: Sequence[str] = DEFAULT_WORKLOADS,
                    block_factors: Sequence[int] = DEFAULT_BLOCK_FACTORS
                    ) -> FigureResult:
    """Oracle-over-blind throughput ratio vs placement block size."""
    topo = simulated_baseline()
    bw_fraction = topo.bandwidth_fractions()[0]
    series = []
    xs = tuple(float(f * PAGE_SIZE) / 1024 for f in block_factors)
    cases = [
        (name, *_workload_case(name)) for name in workloads
    ]
    cases.append(("scattered-hot", *_scattered_hot_trace()))
    for label, base, chars in cases:
        ys = []
        for factor in block_factors:
            trace = base.coarsened(factor)
            budget = max(1, int(round(
                trace.footprint_pages * CAPACITY_FRACTION
            )))
            counts = trace.page_access_counts()
            oracle = _simulate(trace,
                               _oracle_blocks(counts, budget,
                                              bw_fraction), chars)
            blind = _simulate(trace,
                              _arbitrary_blocks(trace.footprint_pages,
                                                budget), chars)
            ys.append(oracle / blind)
        series.append(Series(label=label, x=xs, y=tuple(ys)))
    notes = {
        f"{s.label}_headroom_4k": s.y[0] for s in series
    }
    notes.update({
        f"{s.label}_headroom_2m": s.y[-1] for s in series
    })
    return FigureResult(
        figure_id="ext-granularity",
        title=("oracle headroom over blind placement vs placement "
               f"block size, {CAPACITY_FRACTION:.0%} BO capacity"),
        x_label="block size KiB",
        y_label="oracle / blind throughput",
        series=tuple(series),
        notes=notes,
    )


def main() -> None:
    print(run_granularity().render())


if __name__ == "__main__":
    main()
