"""Figure 3: performance across xC-yB placement ratios.

The central result: sweeping the fraction of pages placed in
capacity-optimized (C) vs bandwidth-optimized (B) memory, every
bandwidth-sensitive workload peaks at the BW-AWARE ratio (30C-70B for
the 80+200 GB/s system), beating the Linux LOCAL policy (0C-100B) by
~18% and INTERLEAVE (50C-50B) by ~35% on average, while the latency
sensitive sgemm prefers LOCAL.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.runner import bw_ratio_policy
from repro.workloads.base import TraceWorkload

DEFAULT_RATIOS = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)

#: the optimal ratio the paper rounds to for the Table 1 system.
PAPER_RATIO = 30


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        ratios: Sequence[int] = DEFAULT_RATIOS) -> TableResult:
    """Per-workload performance at each xC-yB ratio, normalized to
    0C-100B (= LOCAL placement)."""
    picked = resolve_workloads(workloads)
    if 0 not in ratios:
        raise ValueError("the ratio sweep needs the 0C-100B baseline")
    columns = tuple(f"{r}C-{100 - r}B" for r in ratios)
    results = iter(sweep([
        spec(workload, bw_ratio_policy(float(ratio)))
        for workload in picked for ratio in ratios
    ]))
    rows = []
    per_ratio: dict[int, list[float]] = {r: [] for r in ratios}
    for workload in picked:
        values = {ratio: next(results).throughput for ratio in ratios}
        baseline = values[0]
        normalized = tuple(values[r] / baseline for r in ratios)
        for ratio, value in zip(ratios, normalized):
            per_ratio[ratio].append(value)
        rows.append((workload.name, normalized))
    rows.append((
        "geomean",
        tuple(geomean(per_ratio[r]) for r in ratios),
    ))

    notes = {}
    if PAPER_RATIO in ratios and 50 in ratios:
        bw_aware = geomean(per_ratio[PAPER_RATIO])
        interleave = geomean(per_ratio[50])
        notes["bwaware_vs_local"] = bw_aware
        notes["bwaware_vs_interleave"] = bw_aware / interleave
    return TableResult(
        figure_id="fig3",
        title="performance vs xC-yB page placement ratio (vs 0C-100B)",
        columns=columns,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
