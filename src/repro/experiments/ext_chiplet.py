"""Extension: closed-loop ratio tuning on chiplet topologies.

The paper's BW-AWARE split is read once from the SBIT.  On a
multi-chiplet GPU (per-chiplet HBM + far CPU DDR, described by the
explicit :class:`~repro.memory.distance.DistanceMatrix`) the right
split still exists in closed form — but only for *stationary*
workloads.  This extension races three ratios on phase-changing
workloads:

* **static 1/N** — plain INTERLEAVE, no SBIT at all;
* **static SBIT** — the closed-form ``bandwidth_fractions()`` split,
  the best any offline policy can do;
* **tuned** — the :mod:`repro.tuning` controller starting from 1/N and
  learning from per-pool bandwidth counters as it runs (adaptation
  transient included in its time).

Expected shape: tuned always beats static 1/N (the ISSUE acceptance
bar), approaches static SBIT on stationary workloads, and can track
phase changes neither static split reacts to.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.gpu.config import table1_config
from repro.gpu.simulator import make_engine
from repro.memory.topology import SystemTopology, chiplet_topology
from repro.tuning import RatioController, autotune, static_epoch_time_ns
from repro.workloads.base import TraceWorkload
from repro.workloads.suite import get_workload

COLUMNS = ("static-1/N", "static-SBIT", "tuned", "tuned-speedup")

#: phase-changing scenarios plus one stationary control.
DEFAULT_WORKLOADS = ("phase_shift", "sliding_window", "xsbench")

#: trace length per cell; short enough for the CI quick config.
QUICK_ACCESSES = 20_000
FULL_ACCESSES = 60_000


def run_chiplet(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                = None,
                topologies: Optional[Sequence[SystemTopology]] = None,
                quick: bool = False) -> TableResult:
    """Tuned vs static interleave ratios on chiplet systems.

    Rows are (topology, workload) cells; each carries the epoch-summed
    runtime of the three ratios normalized to static 1/N (higher is
    better) plus the tuned speedup over static 1/N.
    """
    picked = tuple(
        w if isinstance(w, TraceWorkload) else get_workload(w)
        for w in (workloads if workloads is not None else DEFAULT_WORKLOADS)
    )
    systems = tuple(
        topologies if topologies is not None
        else ((chiplet_topology(2),) if quick
              else (chiplet_topology(2), chiplet_topology(4)))
    )
    n_accesses = QUICK_ACCESSES if quick else FULL_ACCESSES
    epochs = 8 if quick else 16
    engine = make_engine("throughput", table1_config())

    rows = []
    speedups = []
    sbit_gaps = []
    for system in systems:
        sbit_split = system.bandwidth_fractions()
        for workload in picked:
            report = autotune(
                workload, system,
                n_accesses=n_accesses,
                epochs=epochs,
                controller=RatioController(),
            )
            trace = workload.dram_trace("default", n_accesses=n_accesses,
                                        n_epochs=epochs)
            chars = workload.characteristics("default")
            sbit_ns = static_epoch_time_ns(trace, system, engine, chars,
                                           sbit_split)
            uniform_ns = report.static_time_ns
            rows.append((
                f"{system.name}/{workload.name}",
                (1.0,
                 uniform_ns / sbit_ns,
                 uniform_ns / report.tuned_time_ns,
                 report.speedup),
            ))
            speedups.append(report.speedup)
            sbit_gaps.append(report.closed_form_gap)
    notes = {
        "tuned_vs_uniform_geomean": geomean(speedups),
        "min_tuned_speedup": min(speedups),
        "max_closed_form_gap": max(sbit_gaps),
        "epochs": epochs,
        "n_accesses": n_accesses,
    }
    return TableResult(
        figure_id="ext-chiplet",
        title="chiplet topologies: tuned vs static interleave ratios "
              "(normalized to static 1/N)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run_chiplet().render())


if __name__ == "__main__":
    main()
