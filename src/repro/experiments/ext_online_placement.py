"""Extension: the ONLINE policy on dynamic-placement scenarios.

``ext_migration`` already quantifies the paper's Section 5.5 argument
on the *paper's own* (stationary) workloads: online migration from a
bad start never beats good static placement at measured costs.  This
experiment asks the complementary question the paper leaves open —
what happens where static placement is structurally weakest?  Two
scenario families (see :mod:`repro.workloads.dynamic`) are built so
that whole-trace page counts carry no signal:

* ``phase_shift`` — the hot window rotates, so even the ORACLE's
  profile averages to uniform;
* ``sliding_window`` — the live window slides over a footprint that
  exceeds BO under the study's capacity constraint.

For each scenario, every static policy (LOCAL, INTERLEAVE, BW-AWARE,
ANNOTATED, ORACLE) is compared against ONLINE across a migration-cost
sweep (1.0 = the paper's measured software costs, 0 = free).  The
headline numbers: with modestly cheaper migration (cost scale ~0.1,
i.e. hardware-assisted copies or executions long enough to amortize
the fixed costs) ONLINE beats *every* static policy on both families —
while at the full measured cost it still loses, which is the paper's
claim, reproduced rather than contradicted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import FigureResult, Series
from repro.experiments.common import EXP_SEED, run, spec, sweep

#: (scenario, BO capacity as a fraction of the scenario footprint).
SCENARIOS = (
    ("phase_shift", 0.15),
    ("sliding_window", 0.25),
)

STATIC_POLICIES = ("LOCAL", "INTERLEAVE", "BW-AWARE", "ANNOTATED",
                   "ORACLE")

#: migration cost scales swept (1.0 = paper-measured software costs).
DEFAULT_COST_SCALES = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)

#: the reference scale for the headline ONLINE-vs-static comparison:
#: cheap-but-not-free migration (hardware-assisted copy engines, or a
#: kernel long enough to amortize the measured fixed costs ~10x).
REFERENCE_COST_SCALE = 0.1

#: scenario traces are long so migration has execution to amortize
#: against — the regime the break-even question is actually about.
SCENARIO_ACCESSES = 4_000_000


def online_spec(cost_scale: float) -> str:
    """The ONLINE spec string used throughout this study.

    The cumulative-overhead cap is lifted (``overhead=none``) because
    the study wants ONLINE's *uncapped* behaviour on each scenario —
    including losing outright at the paper's measured costs.
    """
    if cost_scale == 1.0:
        return "ONLINE@overhead=none"
    return f"ONLINE@cost={cost_scale},overhead=none"


def run_scenario(name: str,
                 capacity_fraction: float,
                 cost_scales: Sequence[float] = DEFAULT_COST_SCALES,
                 trace_accesses: int = SCENARIO_ACCESSES,
                 seed: int = EXP_SEED) -> FigureResult:
    """ONLINE-vs-static comparison for one scenario family.

    Y values are throughput relative to static BW-AWARE at the same
    capacity constraint; the x axis sweeps the migration cost scale.
    Static placements do not migrate, so their series are flat.
    """
    static = {
        policy: run(name, policy,
                    bo_capacity_fraction=capacity_fraction,
                    trace_accesses=trace_accesses, seed=seed).throughput
        for policy in STATIC_POLICIES
    }
    online_specs = [
        spec(name, online_spec(scale),
             bo_capacity_fraction=capacity_fraction,
             trace_accesses=trace_accesses, seed=seed)
        for scale in cost_scales
    ]
    online = [result.throughput for result in sweep(online_specs)]

    base = static["BW-AWARE"]
    xs = tuple(float(s) for s in cost_scales)
    series = [Series("ONLINE", xs, tuple(y / base for y in online))]
    for policy in STATIC_POLICIES:
        series.append(
            Series(f"static-{policy}", xs,
                   tuple(static[policy] / base for _ in xs))
        )
    best_static = max(static.values())
    crossover = next(
        (x for x, y in zip(xs, online) if y < best_static), float("nan")
    )
    reference = dict(zip(xs, online)).get(REFERENCE_COST_SCALE)
    return FigureResult(
        figure_id=f"ext-online-placement[{name}]",
        title=(f"ONLINE vs static placement on {name}, "
               f"{capacity_fraction:.0%} BO capacity"),
        x_label="migration cost scale (1.0 = paper measured)",
        y_label="throughput vs static BW-AWARE",
        series=tuple(series),
        notes={
            # All-numeric: FigureResult.render() formats notes as
            # floats.  The best static policy is readable off the flat
            # series; these notes carry the headline ratios.
            "best_static_vs_bwaware": best_static / base,
            "online_loses_beyond_cost_scale": crossover,
            "online_at_reference_vs_best_static": (
                float("nan") if reference is None
                else reference / best_static
            ),
        },
    )


def run_all(cost_scales: Sequence[float] = DEFAULT_COST_SCALES,
            trace_accesses: int = SCENARIO_ACCESSES,
            scenarios: Optional[Sequence[tuple[str, float]]] = None
            ) -> tuple[FigureResult, ...]:
    """Both scenario families with the study defaults."""
    picked = SCENARIOS if scenarios is None else tuple(scenarios)
    return tuple(
        run_scenario(name, fraction, cost_scales=cost_scales,
                     trace_accesses=trace_accesses)
        for name, fraction in picked
    )


def main() -> None:
    for figure in run_all():
        print(figure.render())
        print()


if __name__ == "__main__":
    main()
