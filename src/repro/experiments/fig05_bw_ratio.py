"""Figure 5: policy comparison while varying CO pool bandwidth.

The paper sweeps the capacity-optimized pool from 0 to 200 GB/s
(bandwidth-symmetric at 200) and compares the average performance of
LOCAL, INTERLEAVE and BW-AWARE.  LOCAL is flat (it never touches CO
bandwidth); INTERLEAVE loses whenever its fixed 50/50 split
oversubscribes the weaker pool; BW-AWARE tracks the aggregate and
matches INTERLEAVE exactly at the symmetric point.

Each point is the geomean across workloads of throughput normalized to
the LOCAL policy on the *same* system, so the LOCAL series is 1.0 by
construction and the others read as "speedup over LOCAL at this ratio".
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.core.metrics import geomean
from repro.core.units import gbps
from repro.experiments.common import (
    BASE_POLICIES,
    resolve_workloads,
    spec,
    sweep,
)
from repro.memory.topology import simulated_baseline
from repro.workloads.base import TraceWorkload

DEFAULT_CO_BANDWIDTHS = (10.0, 40.0, 80.0, 120.0, 160.0, 200.0)


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        co_bandwidths_gbps: Sequence[float] = DEFAULT_CO_BANDWIDTHS
        ) -> FigureResult:
    """Geomean speedup over LOCAL for each policy and CO bandwidth."""
    picked = resolve_workloads(workloads)
    if any(bw <= 0 for bw in co_bandwidths_gbps):
        raise ValueError("CO bandwidth sweep points must be positive; "
                         "the paper's 0 GB/s endpoint degenerates to a "
                         "single-pool system (use LOCAL directly)")
    def contended(co_bw: float):
        base = simulated_baseline()
        return base.replace_zone(
            base.zone(1).rescaled_bandwidth(gbps(co_bw))
        )

    topologies = {co_bw: contended(co_bw) for co_bw in co_bandwidths_gbps}
    results = iter(sweep([
        spec(workload, policy, topology=topologies[co_bw])
        for co_bw in co_bandwidths_gbps
        for workload in picked
        for policy in ("LOCAL",) + BASE_POLICIES
    ]))
    ys = {policy: [] for policy in BASE_POLICIES}
    for co_bw in co_bandwidths_gbps:
        ratios = {policy: [] for policy in BASE_POLICIES}
        for workload in picked:
            local = next(results).throughput
            for policy in BASE_POLICIES:
                ratios[policy].append(next(results).throughput / local)
        for policy in BASE_POLICIES:
            ys[policy].append(geomean(ratios[policy]))
    series = tuple(
        Series(label=policy, x=tuple(co_bandwidths_gbps),
               y=tuple(ys[policy]))
        for policy in BASE_POLICIES
    )
    notes = {}
    if 200.0 in co_bandwidths_gbps:
        symmetric = tuple(co_bandwidths_gbps).index(200.0)
        notes["bwaware_vs_interleave_at_symmetric"] = (
            ys["BW-AWARE"][symmetric] / ys["INTERLEAVE"][symmetric]
        )
    return FigureResult(
        figure_id="fig5",
        title="policy comparison while varying CO memory bandwidth",
        x_label="CO bandwidth GB/s",
        y_label="geomean speedup vs LOCAL",
        series=series,
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
