"""Figure 10: profile-driven annotated placement at 10% BO capacity.

The full Section 5 workflow — profile the workload, turn per-structure
hotness into cudaMalloc hints via GetAllocation, place with the
annotated policy — compared against INTERLEAVE, naive BW-AWARE and the
oracle under a 10% BO capacity constraint.  The paper reports annotated
placement beating INTERLEAVE by 19% and BW-AWARE by 14% on average and
reaching ~90% of the oracle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import TableResult
from repro.core.metrics import geomean
from repro.experiments.common import resolve_workloads, spec, sweep
from repro.workloads.base import TraceWorkload

DEFAULT_CAPACITY_FRACTION = 0.10

POLICIES = ("INTERLEAVE", "BW-AWARE", "ANNOTATED", "ORACLE")


def run(workloads: Optional[Sequence[Union[str, TraceWorkload]]] = None,
        capacity_fraction: float = DEFAULT_CAPACITY_FRACTION
        ) -> TableResult:
    """Per-workload throughput of the four policies at the capacity
    constraint, normalized to INTERLEAVE."""
    picked = resolve_workloads(workloads)
    rows = []
    by_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
    results = iter(sweep([
        spec(workload, policy, bo_capacity_fraction=capacity_fraction)
        for workload in picked for policy in POLICIES
    ]))
    for workload in picked:
        raw = {policy: next(results).throughput for policy in POLICIES}
        baseline = raw["INTERLEAVE"]
        normalized = {p: raw[p] / baseline for p in POLICIES}
        for policy in POLICIES:
            by_policy[policy].append(normalized[policy])
        rows.append((workload.name,
                     tuple(normalized[p] for p in POLICIES)))
    notes = {
        "annotated_vs_interleave": geomean(by_policy["ANNOTATED"]),
        "annotated_vs_bwaware": geomean(
            a / b for a, b in zip(by_policy["ANNOTATED"],
                                  by_policy["BW-AWARE"])
        ),
        "annotated_vs_oracle": geomean(
            a / o for a, o in zip(by_policy["ANNOTATED"],
                                  by_policy["ORACLE"])
        ),
    }
    return TableResult(
        figure_id="fig10",
        title=(f"annotated placement at {capacity_fraction:.0%} BO "
               "capacity (vs INTERLEAVE)"),
        columns=POLICIES,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
