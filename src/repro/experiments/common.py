"""Shared settings and helpers for the figure regenerators.

Every experiment module uses the same trace length and seed so results
are comparable across figures and stable across runs; traces are
memoized by the workload layer, so the cache-filter cost is paid once
per (workload, dataset) per process.

All grid execution goes through :mod:`repro.runner`: figure modules
build their full spec list with :func:`spec` and hand it to
:func:`sweep`, which resolves specs through the active runner's result
cache and worker pool.  The single-run helpers :func:`run` and
:func:`throughput` take the same path, so even one-off calls benefit
from (and populate) the cache when one is configured.  Policy objects
the runner cannot canonicalize fall back to direct in-process
execution — correctness never depends on cacheability.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.errors import UncacheableSpecError
from repro.core.experiment import ExperimentResult, run_experiment
from repro.memory.topology import SystemTopology
from repro.policies.base import PlacementPolicy
from repro.runner import RunSpec, active, make_spec
from repro.workloads.base import TraceWorkload
from repro.workloads.suite import get_workload, workload_names

#: raw accesses per trace in the figure regenerators — long enough to
#: cover every footprint page several times, short enough that a full
#: 19-workload sweep completes in seconds.
EXP_ACCESSES = 120_000

#: the experiment seed (placement randomness + trace synthesis).
EXP_SEED = 0

#: The three policies Figure 3/5 compare.
BASE_POLICIES = ("LOCAL", "INTERLEAVE", "BW-AWARE")

#: memoized resolutions of name-only workload selections, so the
#: figure regenerators share one tuple (and the workload singletons
#: behind it) instead of rebuilding it per figure.
_RESOLVE_CACHE: dict[Optional[tuple[str, ...]], tuple[TraceWorkload, ...]] = {}


def resolve_workloads(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                      ) -> tuple[TraceWorkload, ...]:
    """Default to the full 19-benchmark suite.

    Resolution is memoized for name-only selections (including the
    ``None`` = full-suite default): repeated calls return the same
    tuple of registry-singleton workload models, so their memoized
    traces are shared across every figure in the process.
    """
    key: Optional[tuple[str, ...]] = None
    if workloads is not None:
        if not all(isinstance(w, str) for w in workloads):
            return tuple(
                w if isinstance(w, TraceWorkload) else get_workload(w)
                for w in workloads
            )
        key = tuple(workloads)
    cached = _RESOLVE_CACHE.get(key)
    if cached is None:
        names = workload_names() if key is None else key
        cached = tuple(get_workload(name) for name in names)
        _RESOLVE_CACHE[key] = cached
    return cached


def spec(workload: Union[str, TraceWorkload],
         policy: Union[str, PlacementPolicy],
         topology: Optional[SystemTopology] = None,
         dataset: str = "default",
         bo_capacity_fraction: Optional[float] = None,
         training_dataset: Optional[str] = None,
         trace_accesses: int = EXP_ACCESSES,
         seed: int = EXP_SEED) -> RunSpec:
    """A :class:`RunSpec` with the experiment-suite defaults."""
    return make_spec(
        workload, policy,
        dataset=dataset,
        topology=topology,
        bo_capacity_fraction=bo_capacity_fraction,
        trace_accesses=trace_accesses,
        seed=seed,
        training_dataset=training_dataset,
    )


def sweep(specs: Sequence[RunSpec]) -> tuple[ExperimentResult, ...]:
    """Resolve a batch of specs through the active sweep runner.

    Results come back in spec order; figure modules iterate them in
    the same nested order they built the specs in.
    """
    return active().run(specs).results


def throughput(workload: Union[str, TraceWorkload],
               policy: Union[str, PlacementPolicy],
               topology: Optional[SystemTopology] = None,
               dataset: str = "default",
               bo_capacity_fraction: Optional[float] = None,
               training_dataset: Optional[str] = None,
               trace_accesses: int = EXP_ACCESSES,
               seed: int = EXP_SEED) -> float:
    """Throughput of one run with the experiment-suite defaults."""
    return run(workload, policy, topology=topology, dataset=dataset,
               bo_capacity_fraction=bo_capacity_fraction,
               training_dataset=training_dataset,
               trace_accesses=trace_accesses, seed=seed).throughput


def run(workload: Union[str, TraceWorkload],
        policy: Union[str, PlacementPolicy],
        topology: Optional[SystemTopology] = None,
        dataset: str = "default",
        bo_capacity_fraction: Optional[float] = None,
        training_dataset: Optional[str] = None,
        trace_accesses: int = EXP_ACCESSES,
        seed: int = EXP_SEED) -> ExperimentResult:
    """One experiment with the suite defaults (through the runner)."""
    try:
        one = spec(workload, policy, topology=topology, dataset=dataset,
                   bo_capacity_fraction=bo_capacity_fraction,
                   training_dataset=training_dataset,
                   trace_accesses=trace_accesses, seed=seed)
    except UncacheableSpecError:
        # Custom policy objects bypass the runner (and its cache).
        return run_experiment(
            workload,
            dataset=dataset,
            policy=policy,
            topology=topology,
            bo_capacity_fraction=bo_capacity_fraction,
            trace_accesses=trace_accesses,
            seed=seed,
            training_dataset=training_dataset,
        )
    return active().run((one,)).results[0]
