"""Shared settings and helpers for the figure regenerators.

Every experiment module uses the same trace length and seed so results
are comparable across figures and stable across runs; traces are
memoized by the workload layer, so the cache-filter cost is paid once
per (workload, dataset) per process.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.experiment import ExperimentResult, run_experiment
from repro.memory.topology import SystemTopology
from repro.policies.base import PlacementPolicy
from repro.workloads.base import TraceWorkload
from repro.workloads.suite import get_workload, workload_names

#: raw accesses per trace in the figure regenerators — long enough to
#: cover every footprint page several times, short enough that a full
#: 19-workload sweep completes in seconds.
EXP_ACCESSES = 120_000

#: the experiment seed (placement randomness + trace synthesis).
EXP_SEED = 0

#: The three policies Figure 3/5 compare.
BASE_POLICIES = ("LOCAL", "INTERLEAVE", "BW-AWARE")


def resolve_workloads(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                      ) -> tuple[TraceWorkload, ...]:
    """Default to the full 19-benchmark suite."""
    if workloads is None:
        names: Sequence[Union[str, TraceWorkload]] = workload_names()
    else:
        names = workloads
    return tuple(
        w if isinstance(w, TraceWorkload) else get_workload(w)
        for w in names
    )


def throughput(workload: Union[str, TraceWorkload],
               policy: Union[str, PlacementPolicy],
               topology: Optional[SystemTopology] = None,
               dataset: str = "default",
               bo_capacity_fraction: Optional[float] = None,
               training_dataset: Optional[str] = None,
               trace_accesses: int = EXP_ACCESSES,
               seed: int = EXP_SEED) -> float:
    """Throughput of one run with the experiment-suite defaults."""
    return run(workload, policy, topology=topology, dataset=dataset,
               bo_capacity_fraction=bo_capacity_fraction,
               training_dataset=training_dataset,
               trace_accesses=trace_accesses, seed=seed).throughput


def run(workload: Union[str, TraceWorkload],
        policy: Union[str, PlacementPolicy],
        topology: Optional[SystemTopology] = None,
        dataset: str = "default",
        bo_capacity_fraction: Optional[float] = None,
        training_dataset: Optional[str] = None,
        trace_accesses: int = EXP_ACCESSES,
        seed: int = EXP_SEED) -> ExperimentResult:
    """One experiment with the suite defaults."""
    return run_experiment(
        workload,
        dataset=dataset,
        policy=policy,
        topology=topology,
        bo_capacity_fraction=bo_capacity_fraction,
        trace_accesses=trace_accesses,
        seed=seed,
        training_dataset=training_dataset,
    )
