"""Figure 2: GPU performance sensitivity to bandwidth and latency.

The paper sweeps the memory system of a GPU (all data GPU-local, i.e.
LOCAL placement) across bandwidth scales and added latencies and shows
that most GPU workloads track bandwidth while only sgemm reacts
strongly to latency.  Each sweep point is normalized to the workload's
baseline (scale 1.0 / +0 cycles) performance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.report import FigureResult, Series
from repro.experiments.common import resolve_workloads, spec, sweep, throughput
from repro.memory.topology import simulated_baseline
from repro.workloads.base import TraceWorkload

DEFAULT_BW_SCALES = (0.5, 0.75, 1.0, 1.5, 2.0)
DEFAULT_ADDED_CYCLES = (0, 100, 200, 400)


def run_bandwidth(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                  = None,
                  scales: Sequence[float] = DEFAULT_BW_SCALES
                  ) -> FigureResult:
    """Figure 2a: performance vs memory bandwidth scaling."""
    picked = resolve_workloads(workloads)

    def scaled(scale: float):
        base = simulated_baseline()
        return base.replace_zone(
            base.local.rescaled_bandwidth(base.local.bandwidth * scale)
        )

    topologies = {scale: scaled(scale) for scale in scales}
    results = iter(sweep([
        spec(workload, "LOCAL", topology=topologies[scale])
        for workload in picked for scale in scales
    ]))
    series = []
    for workload in picked:
        baseline = None
        ys = []
        for scale in scales:
            value = next(results).throughput
            ys.append(value)
            if scale == 1.0:
                baseline = value
        if baseline is None:
            baseline = throughput(workload, "LOCAL",
                                  topology=simulated_baseline())
        series.append(Series(
            label=workload.name,
            x=tuple(scales),
            y=tuple(y / baseline for y in ys),
        ))
    return FigureResult(
        figure_id="fig2a",
        title="GPU performance sensitivity to bandwidth scaling",
        x_label="bandwidth scale",
        y_label="performance vs 1.0x",
        series=tuple(series),
    )


def run_latency(workloads: Optional[Sequence[Union[str, TraceWorkload]]]
                = None,
                added_cycles: Sequence[int] = DEFAULT_ADDED_CYCLES
                ) -> FigureResult:
    """Figure 2b: performance vs added memory latency."""
    picked = resolve_workloads(workloads)

    def delayed(cycles: int):
        base = simulated_baseline()
        return base.replace_zone(
            base.local.with_hop_cycles(base.local.hop_cycles + cycles)
        )

    topologies = {cycles: delayed(cycles) for cycles in added_cycles}
    results = iter(sweep([
        spec(workload, "LOCAL", topology=topologies[cycles])
        for workload in picked for cycles in added_cycles
    ]))
    series = []
    for workload in picked:
        baseline = None
        ys = []
        for cycles in added_cycles:
            value = next(results).throughput
            ys.append(value)
            if cycles == 0:
                baseline = value
        if baseline is None:
            baseline = throughput(workload, "LOCAL",
                                  topology=simulated_baseline())
        series.append(Series(
            label=workload.name,
            x=tuple(float(c) for c in added_cycles),
            y=tuple(y / baseline for y in ys),
        ))
    return FigureResult(
        figure_id="fig2b",
        title="GPU performance sensitivity to added memory latency",
        x_label="added latency (cycles)",
        y_label="performance vs +0",
        series=tuple(series),
    )


def main() -> None:
    print(run_bandwidth().render())
    print()
    print(run_latency().render())


if __name__ == "__main__":
    main()
