"""Figure 9: program annotation for runtime page placement.

Figure 9 shows the before/after of annotating a program: plain
``cudaMalloc`` calls (9a) become size/hotness arrays feeding
``GetAllocation`` whose hints parameterize each allocation (9b).  This
regenerator produces that *final code* for any workload, with the
hotness values coming from an actual profiling run — the artifact a
developer following Section 5 would end up committing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EXP_ACCESSES, EXP_SEED
from repro.memory.acpi import enumerate_tables
from repro.memory.topology import simulated_baseline
from repro.profiling.profiler import PageAccessProfiler
from repro.runtime.hints import get_allocation
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class AnnotatedProgram:
    """The Figure 9b artifact for one workload."""

    workload: str
    original_code: str
    annotated_code: str
    hints: tuple[str, ...]

    def render(self) -> str:
        return (f"fig9[{self.workload}]\n"
                f"--- (a) original code ---\n{self.original_code}\n"
                f"--- (b) final code ---\n{self.annotated_code}")


def run(workload_name: str = "bfs", dataset: str = "default",
        capacity_fraction: float = 0.10) -> AnnotatedProgram:
    """Generate the annotated allocation code for one workload."""
    workload = get_workload(workload_name)
    specs = workload.data_structures(dataset)
    profile = PageAccessProfiler().profile(
        workload, dataset, n_accesses=EXP_ACCESSES, seed=EXP_SEED
    )
    tables = enumerate_tables(simulated_baseline())
    bo_bytes = int(workload.footprint_bytes(dataset) * capacity_fraction)
    sizes = [spec.size_bytes for spec in specs]
    hotness = [float(profile.structure_by_name(spec.name).accesses)
               for spec in specs]
    hints = get_allocation(sizes, hotness, tables, bo_bytes)

    original = "\n".join(
        f"cudaMalloc(&{spec.name}, {spec.size_bytes});"
        for spec in specs
    )
    lines = ["// size[i]: Size of data structures",
             "// hotness[i]: Hotness of data structures"]
    for index, spec in enumerate(specs):
        lines.append(f"size[{index}] = {spec.size_bytes};")
    for index, value in enumerate(hotness):
        lines.append(f"hotness[{index}] = {value:.0f};")
    lines.append("")
    lines.append("// hint[i]: Computed data structure placement hints")
    lines.append("hint[] = GetAllocation(size[], hotness[]);")
    for index, spec in enumerate(specs):
        lines.append(
            f"cudaMalloc(&{spec.name}, size[{index}], "
            f"hint[{index}]);  // -> {hints[index].value}"
        )
    return AnnotatedProgram(
        workload=workload_name,
        original_code=original,
        annotated_code="\n".join(lines),
        hints=tuple(hint.value for hint in hints),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
