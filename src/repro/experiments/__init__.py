"""Figure/table regenerators, one module per paper exhibit.

Each module exposes ``run(...)`` returning a structured result with a
``render()`` method, plus a ``main()`` that prints it — so every paper
exhibit can be regenerated with e.g.::

    python -m repro.experiments.fig03_ratio_sweep
"""

from repro.experiments import (
    ext_chiplet,
    ext_cpu_contention,
    ext_energy,
    ext_granularity,
    ext_interconnect,
    ext_migration,
    ext_online_placement,
    ext_three_pool,
    fig01_topologies,
    fig02_sensitivity,
    fig03_ratio_sweep,
    fig04_capacity,
    fig05_bw_ratio,
    fig06_cdf,
    fig07_datastructs,
    fig08_oracle,
    fig09_annotation,
    fig10_annotated,
    fig11_datasets,
    tab01_config,
)

__all__ = [
    "fig01_topologies",
    "fig02_sensitivity",
    "fig03_ratio_sweep",
    "fig04_capacity",
    "fig05_bw_ratio",
    "fig06_cdf",
    "fig07_datastructs",
    "fig08_oracle",
    "fig09_annotation",
    "fig10_annotated",
    "fig11_datasets",
    "tab01_config",
    "ext_chiplet",
    "ext_cpu_contention",
    "ext_energy",
    "ext_granularity",
    "ext_interconnect",
    "ext_migration",
    "ext_online_placement",
    "ext_three_pool",
]

ALL_EXPERIMENTS = tuple(__all__)
