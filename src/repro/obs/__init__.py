"""Unified observability: metrics, spans, structured logs.

Production tiered-memory systems — TPP's kernel counters, HeMem's
per-pool sampling — are driven by lightweight continuous monitoring;
this package is the repro equivalent, shared by every layer instead of
living inside the daemon:

* :mod:`repro.obs.metrics` — the Prometheus text-format registry
  (promoted from ``repro.serve.metrics``; that import path remains a
  compat re-export).  Counters, gauges, fixed-bucket histograms,
  :func:`~repro.obs.metrics.parse_metrics`, and the strict
  :func:`~repro.obs.metrics.validate_exposition` checker CI runs over
  ``/metrics``.
* :mod:`repro.obs.trace` — span-based tracing with Chrome trace-event
  JSON export (Perfetto / ``about:tracing``).  ``REPRO_TRACE=<path>``
  or ``--trace`` activates it; disabled it is a single global check.
  Worker-process spans merge into the parent's timeline; an
  ``X-Trace-Id`` header correlates client → daemon → runner → cache.
* :mod:`repro.obs.log` — structured JSON logging
  (``REPRO_LOG_JSON=1``), one line per event with keyed fields,
  replacing ad-hoc prints in the runner and the daemon.

See ``docs/api.md`` ("Observability") for the span/metric/log
inventories and the Perfetto walkthrough.
"""

from repro.obs.log import LOG_JSON_ENV, format_event, json_mode, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_metrics,
    validate_exposition,
)
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_ID_HEADER,
    Tracer,
    current_trace_id,
    enabled,
    install,
    instant,
    new_trace_id,
    span,
    uninstall,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LOG_JSON_ENV",
    "MetricsRegistry",
    "TRACE_ENV",
    "TRACE_ID_HEADER",
    "Tracer",
    "current_trace_id",
    "enabled",
    "format_event",
    "install",
    "instant",
    "json_mode",
    "log_event",
    "new_trace_id",
    "parse_metrics",
    "span",
    "uninstall",
    "validate_exposition",
]
