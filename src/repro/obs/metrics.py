"""A minimal Prometheus-text-format metrics registry.

Promoted from ``repro.serve.metrics`` (which remains as a compat
re-export) so the runner, the cache, and anything else can record
counters/histograms without a daemon in the process: counters, gauges,
and fixed-bucket histograms that render to the
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
scrapers understand.  All mutation happens on the event loop (or under
the GIL from worker threads incrementing plain ints/floats), so no
locking is needed for the accuracy class this serves.

Label handling is deliberately small: a metric family is instantiated
per label *tuple* on first use, and labels render sorted by key so the
output is deterministic — important because the integration tests and
the CI smoke job grep this text.  Label **values** are escaped per the
exposition spec (``\\`` → ``\\\\``, ``"`` → ``\\"``, newline →
``\\n``), so hostile values — error strings, workload names with
quotes — can never produce unparseable output; :func:`parse_metrics`
understands the escaped form (including spaces inside quoted values)
and :func:`validate_exposition` checks a full scrape against the
format, which the CI smoke job runs over the daemon's ``/metrics``.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping, Optional, Sequence

#: default latency buckets (seconds) — service-time shaped: sub-ms cache
#: hits through multi-second cold simulations.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0)

#: metric and label name grammar from the exposition format spec.
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`."""
    out: list[str] = []
    i, n = 0, len(value)
    while i < n:
        ch = value[i]
        if ch == "\\" and i + 1 < n:
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP text escaping (backslash and newline only, per spec)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str],
                   extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(merged[key])}"'
        for key in sorted(merged)
    )
    return "{" + body + "}"


class _Family:
    """Shared bookkeeping: one named metric, many label children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help_text
        self._children: dict[tuple, object] = {}
        registry._register(self)

    def _child_key(self, labels: Mapping[str, str]) -> tuple:
        return tuple(sorted(labels.items()))

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {_escape_help(self.help)}",
                f"# TYPE {self.name} {self.kind}"]


class Counter(_Family):
    """Monotonic counter with optional labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._child_key(labels)
        entry = self._children.setdefault(key, [dict(labels), 0.0])
        entry[1] += amount

    def value(self, **labels: str) -> float:
        entry = self._children.get(self._child_key(labels))
        return entry[1] if entry else 0.0

    def render(self) -> list[str]:
        lines = self.header()
        if not self._children:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._children):
            labels, value = self._children[key]
            lines.append(
                f"{self.name}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        return lines


class Gauge(_Family):
    """Instantaneous value (queue depths, in-flight counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._child_key(labels)
        self._children[key] = [dict(labels), float(value)]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._child_key(labels)
        entry = self._children.setdefault(key, [dict(labels), 0.0])
        entry[1] += amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        entry = self._children.get(self._child_key(labels))
        return entry[1] if entry else 0.0

    def render(self) -> list[str]:
        lines = self.header()
        if not self._children:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._children):
            labels, value = self._children[key]
            lines.append(
                f"{self.name}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        return lines


class Histogram(_Family):
    """Fixed-bucket latency histogram (cumulative buckets + sum/count)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, registry)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels: str) -> None:
        key = self._child_key(labels)
        entry = self._children.setdefault(
            key, [dict(labels), [0] * len(self.buckets), 0.0, 0]
        )
        _, counts, _, _ = entry
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        entry[2] += value
        entry[3] += 1

    def count(self, **labels: str) -> int:
        entry = self._children.get(self._child_key(labels))
        return entry[3] if entry else 0

    def render(self) -> list[str]:
        lines = self.header()
        for key in sorted(self._children):
            labels, counts, total, n = self._children[key]
            # counts[i] is already cumulative: observe() increments
            # every bucket whose bound admits the value.
            for bound, count in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(labels, {'le': _format_value(bound)})}"
                    f" {count}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(labels, {'le': '+Inf'})} {n}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(labels)} "
                f"{_format_value(total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(labels)} {n}"
            )
        return lines


class MetricsRegistry:
    """Create-and-collect registry; renders the full exposition text."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> None:
        if family.name in self._families:
            raise ValueError(f"duplicate metric {family.name!r}")
        self._families[family.name] = family

    def counter(self, name: str, help_text: str) -> Counter:
        return Counter(name, help_text, self)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return Gauge(name, help_text, self)

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return Histogram(name, help_text, self, buckets=buckets)

    def families(self) -> Iterable[_Family]:
        return self._families.values()

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"


def _split_sample(line: str) -> Optional[tuple[str, str]]:
    """Split a sample line into ``(name_with_labels, raw_value)``.

    Quote-aware: a space inside a quoted label value (or an escaped
    quote) never splits the line — the naive ``rpartition(" ")`` this
    replaces misparsed exactly those.  Returns ``None`` for lines that
    are not shaped like a sample.
    """
    brace = line.find("{")
    if brace == -1:
        name, sep, raw = line.partition(" ")
        if not sep:
            return None
        return name, raw.strip()
    i, n = brace + 1, len(line)
    in_quotes = False
    escaped = False
    while i < n:
        ch = line[i]
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            break
        i += 1
    if i >= n:  # unterminated label set
        return None
    return line[: i + 1], line[i + 1:].strip()


def _parse_labels(body: str) -> dict[str, str]:
    """Decode a ``k="v",...`` label body (validating the grammar).

    Raises :class:`ValueError` on any deviation from the exposition
    format: bad label names, unquoted or unterminated values, stray
    characters between pairs.
    """
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq == -1:
            raise ValueError(f"label body missing '=': {body!r}")
        name = body[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"label {name!r} value is not quoted")
        j = eq + 2
        raw: list[str] = []
        escaped = False
        while j < n:
            ch = body[j]
            if escaped:
                raw.append(ch)
                escaped = False
            elif ch == "\\":
                raw.append(ch)
                escaped = True
            elif ch == '"':
                break
            else:
                raw.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated value for label {name!r}")
        labels[name] = unescape_label_value("".join(raw))
        i = j + 1
        if i < n:
            if body[i] != ",":
                raise ValueError(
                    f"expected ',' between labels, got {body[i]!r}")
            i += 1
    return labels


def _parse_value(raw: str) -> float:
    """Decode a sample value, tolerating an optional timestamp suffix."""
    parts = raw.split()
    if not parts or len(parts) > 2:
        raise ValueError(f"bad sample value {raw!r}")
    if len(parts) == 2:
        int(parts[1])  # timestamp must be integral milliseconds
    value = parts[0]
    if value in ("+Inf", "Inf"):
        return math.inf
    if value == "-Inf":
        return -math.inf
    return float(value)


def parse_metrics(text: str) -> dict[str, float]:
    """Parse exposition text into ``{'name{labels}': value}``.

    The inverse of :meth:`MetricsRegistry.render` for the sample lines —
    used by the client library and the integration tests to assert on
    daemon counters without regexes.  Keys keep the rendered (escaped)
    label form; lines that do not parse as samples are skipped.
    """
    samples: dict[str, float] = {}
    # The exposition format is \n-delimited; str.splitlines would also
    # break on \r or U+2028 *inside* a quoted label value.
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        split = _split_sample(line)
        if split is None:
            continue
        name, raw = split
        try:
            samples[name] = _parse_value(raw)
        except ValueError:
            continue
    return samples


def validate_exposition(text: str) -> int:
    """Strictly validate a full scrape; returns the sample count.

    Checks every non-comment line against the text exposition format:
    metric name grammar, label name grammar, quoted + escaped label
    values, a float-parseable value.  ``# HELP``/``# TYPE`` comments
    must name a metric and (for TYPE) a known type.  Raises
    :class:`ValueError` naming the first offending line — the CI smoke
    job runs this over the daemon's ``/metrics`` output.
    """
    n_samples = 0
    # \n-delimited on purpose — see parse_metrics.
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {lineno}: malformed {parts[1]} comment: "
                        f"{line!r}")
                if parts[1] == "TYPE" and (
                        len(parts) < 4 or parts[3].split()[0] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped")):
                    raise ValueError(
                        f"line {lineno}: unknown metric type: {line!r}")
            continue
        split = _split_sample(line.strip())
        if split is None:
            raise ValueError(f"line {lineno}: not a sample: {line!r}")
        name, raw = split
        brace = name.find("{")
        bare = name if brace == -1 else name[:brace]
        if not _METRIC_NAME_RE.match(bare):
            raise ValueError(
                f"line {lineno}: bad metric name {bare!r}")
        if brace != -1:
            if not name.endswith("}"):
                raise ValueError(
                    f"line {lineno}: unterminated labels: {line!r}")
            _parse_labels(name[brace + 1:-1])
        try:
            _parse_value(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {raw!r}")
        n_samples += 1
    return n_samples
