"""Span-based tracing with Chrome trace-event export.

One question the metrics counters cannot answer is *where the time
went* inside a single request or sweep: which chunk waited, which spec
retried, whether the cache lookup or the engine kernel dominated.  This
module answers it with lightweight spans::

    from repro.obs import trace

    with trace.span("runner.chunk", cat="runner", n_specs=4) as sp:
        ...
        sp.annotate(retries=1)

Design constraints, in order:

* **Near-zero overhead when disabled.**  ``span()`` checks one module
  global and returns a shared no-op handle; no objects are allocated,
  no clocks are read.  The hot kernels stay within noise of the
  committed bench baselines with tracing off.
* **One file, openable in Perfetto.**  Enabled tracers buffer events in
  memory and export the `Chrome trace-event JSON format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  (``{"traceEvents": [...]}``, complete ``"ph": "X"`` events with
  microsecond ``ts``/``dur``), which ``about:tracing`` and
  https://ui.perfetto.dev load directly.
* **Worker spans merge into the parent's timeline.**  Worker processes
  record into a buffer-only tracer (:func:`capture`), ship their events
  back with the chunk payload, and the parent :meth:`Tracer.absorb`\\ s
  them — ``pid``/``tid`` preserved, timestamps on the shared wall
  clock, so Perfetto shows one aligned multi-process timeline.
* **Request-scoped correlation.**  A contextvar carries the current
  trace id (``X-Trace-Id`` on the wire); every span opened under it is
  tagged ``args.trace_id``, so one simulate request yields one
  filterable tree spanning client → daemon → runner → cache.

Activation: ``REPRO_TRACE=<path>`` in the environment (exported
automatically at process exit), ``--trace <path>`` on the CLI, or
:func:`install` programmatically.  Async spans opened inside an
``http.request`` span inherit its timeline lane (a contextvar), so
concurrent requests render as separate, correctly nested tracks even
though they interleave on one event-loop thread.
"""

from __future__ import annotations

import asyncio
import atexit
import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

#: environment variable that enables tracing and names the export path.
TRACE_ENV = "REPRO_TRACE"

#: wire header carrying the trace id client → daemon (case-insensitive).
TRACE_ID_HEADER = "X-Trace-Id"

#: current request/sweep trace id; spans record it as ``args.trace_id``.
_trace_id_var: contextvars.ContextVar[Optional[str]] = \
    contextvars.ContextVar("repro_trace_id", default=None)

#: timeline lane override — set by a root request span so every span
#: nested under it (including async callees on other tasks and executor
#: threads entered with a copied context) shares one ``tid`` track.
_lane_var: contextvars.ContextVar[Optional[int]] = \
    contextvars.ContextVar("repro_trace_lane", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (compact enough for labels)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _trace_id_var.get()


def set_trace_id(trace_id: Optional[str]) -> contextvars.Token:
    """Bind ``trace_id`` to the current context; returns a reset token."""
    return _trace_id_var.set(trace_id)


def reset_trace_id(token: contextvars.Token) -> None:
    _trace_id_var.reset(token)


def _tid() -> int:
    """The timeline lane for the current context.

    A root span may have pinned a lane (async request handling); else
    the asyncio task identity (each concurrent request is its own
    track); else the OS thread identity.
    """
    lane = _lane_var.get()
    if lane is not None:
        return lane
    try:
        task = asyncio.current_task()
    except RuntimeError:
        task = None
    if task is not None:
        return id(task) & 0x7FFFFFFF
    return threading.get_ident() & 0x7FFFFFFF


class _SpanHandle:
    """What a ``with span(...)`` block receives: an annotation sink."""

    __slots__ = ("_extra",)

    def __init__(self, extra: dict) -> None:
        self._extra = extra

    def annotate(self, **fields: Any) -> None:
        """Attach fields to the span's ``args`` at close time."""
        self._extra.update(fields)


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """An in-memory trace-event buffer bound to one export path.

    Thread-safe: spans close (and workers' events are absorbed) from
    the event loop, executor threads, and test threads concurrently.
    ``path`` may be ``None`` for buffer-only tracers (worker capture).
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else None
        #: pid that owns the export; forked children must never write.
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._events: list[dict] = []

    # -- recording -----------------------------------------------------

    def _record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "repro",
             **args: Any) -> Iterator[_SpanHandle]:
        """Record one complete ("X") event around the ``with`` body."""
        ts_us = time.time_ns() // 1_000
        start = time.perf_counter_ns()
        extra: dict = {}
        handle = _SpanHandle(extra)
        try:
            yield handle
        finally:
            dur_us = max((time.perf_counter_ns() - start) // 1_000, 1)
            merged = dict(args)
            merged.update(extra)
            trace_id = _trace_id_var.get()
            if trace_id is not None:
                merged.setdefault("trace_id", trace_id)
            self._record({
                "name": name, "cat": cat, "ph": "X",
                "ts": ts_us, "dur": dur_us,
                "pid": os.getpid(), "tid": _tid(),
                "args": merged,
            })

    def instant(self, name: str, cat: str = "repro",
                **args: Any) -> None:
        """Record one instant ("i") event — retry/degrade annotations."""
        trace_id = _trace_id_var.get()
        if trace_id is not None:
            args.setdefault("trace_id", trace_id)
        self._record({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": time.time_ns() // 1_000,
            "pid": os.getpid(), "tid": _tid(),
            "args": args,
        })

    def absorb(self, events: Sequence[Mapping[str, Any]]) -> None:
        """Merge events recorded elsewhere (worker processes) verbatim.

        ``pid``/``tid`` are preserved so the exported timeline keeps
        one track per worker.
        """
        with self._lock:
            self._events.extend(dict(event) for event in events)

    # -- introspection / export ----------------------------------------

    @property
    def events(self) -> list[dict]:
        """A snapshot of the recorded events (tests, merging)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def export(self, path: Union[str, Path, None] = None) -> Path:
        """Write the Chrome trace-event JSON file; returns its path.

        Only the installing process exports — a forked worker that
        inherited this tracer silently refuses, so pool workers can
        never clobber the parent's file at interpreter exit.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("tracer has no export path")
        if os.getpid() != self.pid:
            return target
        events = self.events
        pids = sorted({event["pid"] for event in events})
        metadata = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"repro (pid {pid})"}}
            for pid in pids
        ]
        payload = {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }
        from repro.core.atomicio import atomic_write_text

        return atomic_write_text(target, json.dumps(payload))


# ----------------------------------------------------------------------
# module-level tracer: one per process, env- or CLI-activated
# ----------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
#: set after the REPRO_TRACE env var has been consulted once, so the
#: disabled fast path is a plain global read.
_ENV_CHECKED = False


def install(path: Union[str, Path, None] = None,
            tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = tracer if tracer is not None else Tracer(path)
    _ENV_CHECKED = True
    return _ACTIVE


def uninstall() -> Optional[Tracer]:
    """Remove and return the process-wide tracer (no export)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def _reset_state() -> None:
    """Forget the tracer *and* the env probe (test isolation only)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def active() -> Optional[Tracer]:
    """The installed tracer, lazily built from ``REPRO_TRACE``."""
    global _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(TRACE_ENV, "").strip()
        if path:
            install(path)
    return _ACTIVE


def enabled() -> bool:
    """True when spans are being recorded in this process."""
    return active() is not None


def span(name: str, cat: str = "repro", **args: Any):
    """Context manager recording one span — no-op when disabled."""
    tracer = active()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **args)


def instant(name: str, cat: str = "repro", **args: Any) -> None:
    """Record one instant event — no-op when disabled."""
    tracer = active()
    if tracer is not None:
        tracer.instant(name, cat=cat, **args)


@contextmanager
def lane(tid: Optional[int] = None) -> Iterator[int]:
    """Pin every span in the block (and its async/executor callees that
    copy this context) to one timeline lane."""
    value = _tid() if tid is None else tid
    token = _lane_var.set(value)
    try:
        yield value
    finally:
        _lane_var.reset(token)


@contextmanager
def capture() -> Iterator[list]:
    """Record spans into a throwaway buffer; yields its event list.

    The worker-process half of span merging: ``_execute_chunk`` runs
    under ``capture()`` and returns the events with its payload, and
    the parent absorbs them.  The ambient tracer (an inherited fork
    copy, or an env-activated one) is shadowed for the duration, so a
    worker can never export or double-record.
    """
    global _ACTIVE, _ENV_CHECKED
    previous, previous_checked = _ACTIVE, _ENV_CHECKED
    tracer = Tracer(path=None)
    _ACTIVE, _ENV_CHECKED = tracer, True
    try:
        yield tracer._events
    finally:
        _ACTIVE, _ENV_CHECKED = previous, previous_checked


def _export_at_exit() -> None:
    """Flush an env-activated tracer when the process ends."""
    tracer = _ACTIVE
    if tracer is not None and tracer.path is not None:
        try:
            tracer.export()
        except Exception:  # pragma: no cover - exit path best-effort
            pass


atexit.register(_export_at_exit)
