"""Structured JSON logging: one line per event, keyed fields.

The daemon and the runner used ad-hoc ``print`` calls for operational
messages, which log aggregators cannot index.  :func:`log_event`
replaces them with a single seam:

* **text mode** (default) — a human-readable line, either the caller's
  ``message`` verbatim (so existing console output is unchanged) or
  ``event key=value ...``;
* **JSON mode** (``REPRO_LOG_JSON=1``) — one JSON object per line with
  a stable schema::

      {"ts": "2026-08-07T12:00:00.123+00:00", "level": "info",
       "event": "serve.listening", "trace_id": "...", ...fields}

  ``ts`` is ISO-8601 UTC; ``level`` is ``debug|info|warning|error``;
  ``event`` is a dotted machine name (``runner.retry``,
  ``cache.quarantined``); the current trace id (when a request context
  is active) correlates log lines with spans; every extra keyword
  lands as a top-level field.

Lines go to stderr by default (stdout stays clean for command output);
the serve daemon routes its lifecycle messages to stdout explicitly to
preserve historical behaviour.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from typing import Any, Optional, TextIO

from repro.obs.trace import current_trace_id

#: environment variable that switches output to one-JSON-per-line.
LOG_JSON_ENV = "REPRO_LOG_JSON"

_LEVELS = ("debug", "info", "warning", "error")


def json_mode() -> bool:
    """True when ``REPRO_LOG_JSON`` asks for machine-readable lines."""
    return os.environ.get(LOG_JSON_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def format_event(event: str, level: str = "info",
                 message: Optional[str] = None,
                 **fields: Any) -> str:
    """The log line :func:`log_event` would emit, without emitting it."""
    if json_mode():
        record: dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(
                timespec="milliseconds"),
            "level": level if level in _LEVELS else "info",
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        if message is not None:
            record["message"] = message
        record.update(fields)
        return json.dumps(record, default=str)
    if message is not None:
        return message
    suffix = " ".join(f"{key}={fields[key]}" for key in fields)
    return f"{event} {suffix}".rstrip()


def log_event(event: str, level: str = "info",
              message: Optional[str] = None,
              stream: Optional[TextIO] = None,
              **fields: Any) -> None:
    """Emit one structured log line (see module docstring).

    ``message`` is the human text used verbatim in text mode (and
    carried as the ``message`` field in JSON mode); without it, text
    mode prints ``event key=value ...``.  ``stream`` defaults to
    stderr.
    """
    out = stream if stream is not None else sys.stderr
    try:
        print(format_event(event, level=level, message=message,
                           **fields),
              file=out, flush=True)
    except (OSError, ValueError):  # pragma: no cover - closed stream
        pass
