"""Page migration cost model (Section 5.5).

The paper measures software page migration on Linux 3.16-rc4: "it is
not possible to migrate pages between NUMA memory zones at a rate
faster than several GB/s and with several microseconds of latency
between invalidation and first re-use", and argues GPUs cannot hide
microsecond stalls.  This model charges exactly those two costs:

* a copy cost — pages move at ``migration_bandwidth`` (the unmap +
  memcpy + remap pipeline rate);
* a re-use stall — each migrated page stalls its first re-user for
  ``first_touch_stall_us`` (TLB shootdown + fault + mapping fixup).

The defaults encode the paper's measurements and can be swept by the
extension bench to find the break-even migration cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.units import PAGE_SIZE, gbps


@dataclass(frozen=True)
class MigrationCostModel:
    """Cost of moving pages between zones at run time."""

    #: aggregate page-copy rate, bytes/second ("several GB/s").
    migration_bandwidth: float = gbps(4.0)
    #: stall between invalidation and first re-use, microseconds.
    first_touch_stall_us: float = 5.0
    #: fraction of migrated pages whose first re-use stalls the GPU
    #: (some stalls overlap with independent warps).
    stall_exposure: float = 0.5

    def __post_init__(self) -> None:
        if self.migration_bandwidth <= 0:
            raise ConfigError("migration_bandwidth must be positive")
        if self.first_touch_stall_us < 0:
            raise ConfigError("first_touch_stall_us must be >= 0")
        if not 0.0 <= self.stall_exposure <= 1.0:
            raise ConfigError("stall_exposure out of [0,1]")

    def copy_time_ns(self, n_pages: int) -> float:
        """Time to copy ``n_pages`` between zones."""
        if n_pages < 0:
            raise ConfigError("n_pages must be >= 0")
        return n_pages * PAGE_SIZE / self.migration_bandwidth * 1e9

    def stall_time_ns(self, n_pages: int) -> float:
        """Exposed first-re-use stall time for ``n_pages``."""
        if n_pages < 0:
            raise ConfigError("n_pages must be >= 0")
        return n_pages * self.first_touch_stall_us * 1e3 * self.stall_exposure

    def total_time_ns(self, n_pages: int) -> float:
        """Full overhead of migrating ``n_pages``."""
        return self.copy_time_ns(n_pages) + self.stall_time_ns(n_pages)


def free_migration() -> MigrationCostModel:
    """A zero-cost model: the upper bound online migration could reach."""
    return MigrationCostModel(migration_bandwidth=float("inf"),
                              first_touch_stall_us=0.0,
                              stall_exposure=0.0)


def paper_migration() -> MigrationCostModel:
    """The Section 5.5 measured costs."""
    return MigrationCostModel()


def scaled_migration(scale: float) -> MigrationCostModel:
    """The Section 5.5 cost model scaled by ``scale``.

    ``1.0`` is the paper's measured cost, ``0.0`` is free migration.
    Intermediate values model faster migration hardware — or,
    equivalently, longer-running kernels that amortize a fixed per-page
    cost over more execution time (the framing of the ext_migration
    and ext_online_placement cost sweeps).
    """
    if scale < 0:
        raise ConfigError("cost scale must be >= 0")
    if scale == 0.0:
        return free_migration()
    return MigrationCostModel(
        migration_bandwidth=gbps(4.0) / scale,
        first_touch_stall_us=5.0 * scale,
    )
