"""Online migration planning.

At each epoch boundary the migrator compares the hotness tracker's
current estimate against the placement and plans page moves toward the
oracle-shaped target: the hottest pages into BO until either the SBIT
bandwidth share of (estimated) traffic is captured or BO capacity is
full.  A per-epoch page budget models the limited migration rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import PolicyError
from repro.migration.tracker import HotnessTracker


@dataclass(frozen=True)
class MigrationPlan:
    """Pages to move this epoch boundary (footprint page indices)."""

    promote: np.ndarray  # -> BO
    demote: np.ndarray   # -> CO

    @property
    def n_pages(self) -> int:
        return int(self.promote.size + self.demote.size)


class EpochMigrationPolicy:
    """Greedy hottest-first migration toward the bandwidth target.

    ``budget_pages_per_epoch`` caps the pages moved per boundary
    (``None`` = unlimited); ``hysteresis`` requires a candidate
    promotion to be at least that factor hotter than the coldest
    resident BO page it would displace, damping thrash on near-ties.
    """

    def __init__(self, bo_zone: int, co_zone: int,
                 bo_capacity_pages: int, bo_traffic_fraction: float,
                 budget_pages_per_epoch: Optional[int] = None,
                 hysteresis: float = 1.25) -> None:
        if bo_zone == co_zone:
            raise PolicyError("BO and CO zones must differ")
        if bo_capacity_pages < 0:
            raise PolicyError("bo_capacity_pages must be >= 0")
        if not 0.0 < bo_traffic_fraction <= 1.0:
            raise PolicyError("bo_traffic_fraction out of (0,1]")
        if budget_pages_per_epoch is not None and budget_pages_per_epoch < 0:
            raise PolicyError("budget must be >= 0 or None")
        if hysteresis < 1.0:
            raise PolicyError("hysteresis must be >= 1")
        self.bo_zone = bo_zone
        self.co_zone = co_zone
        self.bo_capacity_pages = bo_capacity_pages
        self.bo_traffic_fraction = bo_traffic_fraction
        self.budget = budget_pages_per_epoch
        self.hysteresis = hysteresis

    def _desired_bo_set(self, tracker: HotnessTracker) -> np.ndarray:
        scores = tracker.scores
        total = float(scores.sum())
        if total <= 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(-scores, kind="stable")
        cumulative = np.cumsum(scores[order])
        target = self.bo_traffic_fraction * total
        take = int(np.searchsorted(cumulative, target)) + 1
        take = min(take, self.bo_capacity_pages, order.size)
        return order[:take]

    def plan(self, zone_map: np.ndarray,
             tracker: HotnessTracker) -> MigrationPlan:
        """Plan this boundary's moves given the current placement."""
        zone_map = np.asarray(zone_map)
        if zone_map.size != tracker.n_pages:
            raise PolicyError("zone map and tracker footprint mismatch")
        scores = tracker.scores
        desired = self._desired_bo_set(tracker)
        in_bo = zone_map == self.bo_zone

        desired_mask = np.zeros(zone_map.size, dtype=bool)
        desired_mask[desired] = True
        candidates = desired[~in_bo[desired]]          # want in, not in
        evictable = np.flatnonzero(in_bo & ~desired_mask)

        # Hysteresis: drop promotions that are not clearly hotter than
        # the pages they would displace.
        if candidates.size and evictable.size:
            floor = scores[evictable].min() * self.hysteresis
            candidates = candidates[scores[candidates] >= floor]

        # Hottest promotions first, coldest evictions first.
        candidates = candidates[np.argsort(-scores[candidates],
                                           kind="stable")]
        evictable = evictable[np.argsort(scores[evictable],
                                         kind="stable")]

        free_bo = self.bo_capacity_pages - int(in_bo.sum())
        n_promote = candidates.size
        n_demote = max(0, n_promote - free_bo)
        n_demote = min(n_demote, evictable.size)
        n_promote = min(n_promote, free_bo + n_demote)
        if self.budget is not None:
            while n_promote + n_demote > self.budget:
                if n_promote > 0:
                    n_promote -= 1
                if n_promote + n_demote > self.budget and n_demote > 0:
                    n_demote -= 1
                if n_promote == 0 and n_demote == 0:
                    break
            # Never demote more than needed for the kept promotions.
            n_demote = min(n_demote,
                           max(0, n_promote - free_bo))
        return MigrationPlan(
            promote=candidates[:n_promote],
            demote=evictable[:n_demote],
        )
