"""Online migration planning.

At each epoch boundary the migrator compares the hotness tracker's
current estimate against the placement and plans page moves toward the
oracle-shaped target: the hottest pages into BO until either the SBIT
bandwidth share of (estimated) traffic is captured or BO capacity is
full.  A per-epoch page budget models the limited migration rate.

Two TPP-style refinements (used by the ONLINE placement policy):

* **hysteresis** — a candidate promotion must be clearly hotter than
  the coldest resident BO page it would displace, damping ping-pong on
  near-ties;
* **watermarks** — when BO occupancy crosses the *high* watermark,
  cold pages are proactively demoted down to the *low* watermark, so
  later promotion bursts find free frames instead of spending their
  budget on paired demotions (TPP's "proactive demotion keeps a
  promotion headroom").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import PolicyError
from repro.migration.tracker import HotnessTracker


@dataclass(frozen=True)
class MigrationPlan:
    """Pages to move this epoch boundary (footprint page indices)."""

    promote: np.ndarray  # -> BO
    demote: np.ndarray   # -> CO

    @property
    def n_pages(self) -> int:
        return int(self.promote.size + self.demote.size)


def validate_watermarks(watermarks) -> Optional[tuple[float, float]]:
    """Check a ``(low, high)`` BO-occupancy watermark pair.

    ``None`` disables proactive demotion.  Otherwise both values are
    occupancy fractions with ``0 < low <= high <= 1``.
    """
    if watermarks is None:
        return None
    try:
        low, high = (float(w) for w in watermarks)
    except (TypeError, ValueError):
        raise PolicyError(
            f"watermarks must be a (low, high) pair, got {watermarks!r}"
        )
    if not 0.0 < low <= high <= 1.0:
        raise PolicyError(
            f"watermarks need 0 < low <= high <= 1, got ({low}, {high})"
        )
    return (low, high)


class EpochMigrationPolicy:
    """Greedy hottest-first migration toward the bandwidth target.

    ``budget_pages_per_epoch`` caps the pages moved per boundary
    (``None`` = unlimited); ``hysteresis`` requires a candidate
    promotion to be at least that factor hotter than the coldest
    resident BO page it would displace, damping thrash on near-ties.
    ``watermarks=(low, high)`` adds proactive demotion: whenever BO
    occupancy would end the boundary above ``high * capacity``, the
    coldest non-desired resident pages are demoted until occupancy
    falls to ``low * capacity`` (still within the budget).
    """

    def __init__(self, bo_zone: int, co_zone: int,
                 bo_capacity_pages: int, bo_traffic_fraction: float,
                 budget_pages_per_epoch: Optional[int] = None,
                 hysteresis: float = 1.25,
                 watermarks: Optional[tuple[float, float]] = None) -> None:
        if bo_zone == co_zone:
            raise PolicyError("BO and CO zones must differ")
        if bo_capacity_pages < 0:
            raise PolicyError("bo_capacity_pages must be >= 0")
        if not 0.0 < bo_traffic_fraction <= 1.0:
            raise PolicyError("bo_traffic_fraction out of (0,1]")
        if budget_pages_per_epoch is not None and budget_pages_per_epoch < 0:
            raise PolicyError("budget must be >= 0 or None")
        if hysteresis < 1.0:
            raise PolicyError("hysteresis must be >= 1")
        self.bo_zone = bo_zone
        self.co_zone = co_zone
        self.bo_capacity_pages = bo_capacity_pages
        self.bo_traffic_fraction = bo_traffic_fraction
        self.budget = budget_pages_per_epoch
        self.hysteresis = hysteresis
        self.watermarks = validate_watermarks(watermarks)

    def _desired_bo_set(self, tracker: HotnessTracker) -> np.ndarray:
        scores = tracker.scores
        total = float(scores.sum())
        if total <= 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(-scores, kind="stable")
        cumulative = np.cumsum(scores[order])
        target = self.bo_traffic_fraction * total
        take = int(np.searchsorted(cumulative, target)) + 1
        take = min(take, self.bo_capacity_pages, order.size)
        return order[:take]

    def plan(self, zone_map: np.ndarray, tracker: HotnessTracker,
             budget_pages: Optional[int] = None) -> MigrationPlan:
        """Plan this boundary's moves given the current placement.

        ``budget_pages`` further caps this boundary's moves below the
        policy's per-epoch budget (the ONLINE policy derives it from an
        execution-time overhead cap); the effective budget is the
        minimum of the two.
        """
        zone_map = np.asarray(zone_map)
        if zone_map.size != tracker.n_pages:
            raise PolicyError("zone map and tracker footprint mismatch")
        budget = self.budget
        if budget_pages is not None:
            if budget_pages < 0:
                raise PolicyError("budget_pages must be >= 0")
            budget = (budget_pages if budget is None
                      else min(budget, budget_pages))
        scores = tracker.scores
        desired = self._desired_bo_set(tracker)
        in_bo = zone_map == self.bo_zone

        desired_mask = np.zeros(zone_map.size, dtype=bool)
        desired_mask[desired] = True
        candidates = desired[~in_bo[desired]]          # want in, not in
        evictable = np.flatnonzero(in_bo & ~desired_mask)

        # Hysteresis: drop promotions that are not clearly hotter than
        # the pages they would displace.
        if candidates.size and evictable.size:
            floor = scores[evictable].min() * self.hysteresis
            candidates = candidates[scores[candidates] >= floor]

        # Hottest promotions first, coldest evictions first.
        candidates = candidates[np.argsort(-scores[candidates],
                                           kind="stable")]
        evictable = evictable[np.argsort(scores[evictable],
                                         kind="stable")]

        free_bo = self.bo_capacity_pages - int(in_bo.sum())
        n_promote = candidates.size
        n_demote = max(0, n_promote - free_bo)
        n_demote = min(n_demote, evictable.size)
        n_promote = min(n_promote, free_bo + n_demote)
        if budget is not None:
            while n_promote + n_demote > budget:
                if n_promote > 0:
                    n_promote -= 1
                if n_promote + n_demote > budget and n_demote > 0:
                    n_demote -= 1
                if n_promote == 0 and n_demote == 0:
                    break
            # Never demote more than needed for the kept promotions.
            n_demote = min(n_demote,
                           max(0, n_promote - free_bo))
        n_demote = self._proactive_demotions(
            in_bo, evictable, n_promote, n_demote, budget)
        return MigrationPlan(
            promote=candidates[:n_promote],
            demote=evictable[:n_demote],
        )

    def _proactive_demotions(self, in_bo: np.ndarray,
                             evictable: np.ndarray, n_promote: int,
                             n_demote: int,
                             budget: Optional[int]) -> int:
        """Extend demotions down to the low watermark when occupancy
        would end the boundary above the high watermark."""
        if self.watermarks is None:
            return n_demote
        low, high = self.watermarks
        occupancy = int(in_bo.sum()) + n_promote - n_demote
        high_pages = int(high * self.bo_capacity_pages)
        if occupancy <= high_pages:
            return n_demote
        low_pages = int(low * self.bo_capacity_pages)
        extra = occupancy - low_pages
        extra = min(extra, evictable.size - n_demote)
        if budget is not None:
            extra = min(extra, budget - n_promote - n_demote)
        return n_demote + max(0, extra)
