"""Dynamic page migration substrate (Section 5.5 extension)."""

from repro.migration.cost import (
    MigrationCostModel,
    free_migration,
    paper_migration,
)
from repro.migration.engine import MigrationResult, MigrationSimulator
from repro.migration.policy import EpochMigrationPolicy, MigrationPlan
from repro.migration.tracker import HotnessTracker

__all__ = [
    "MigrationCostModel",
    "free_migration",
    "paper_migration",
    "MigrationResult",
    "MigrationSimulator",
    "EpochMigrationPolicy",
    "MigrationPlan",
    "HotnessTracker",
]
