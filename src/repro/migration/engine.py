"""Epoch-driven dynamic migration simulation.

Replays a workload trace one execution epoch at a time; between epochs
the migration policy may move pages, paying the Section 5.5 cost model.
This is the experiment the paper *argues about* without running —
"software-based page migration is a very expensive operation ...
focusing on online page migration before finding an optimized initial
placement policy is putting the cart before the horse" — made
quantitative: the extension bench compares static BW-AWARE/oracle
placement against online migration from good and bad starting points,
under measured and idealized migration costs.

The simulator doubles as the execution engine behind the first-class
ONLINE placement policy (:mod:`repro.policies.online`), which needs a
few extras beyond the original ext_migration study:

* any performance engine (throughput/detailed/banked), not just the
  analytic one;
* ``oracle_scores`` — prefill the tracker with a full-trace profile
  (the differential tests' "oracle hotness" configuration) instead of
  learning hotness online;
* ``plan_before_start`` — allow one migration boundary before the
  first epoch runs (meaningful only with oracle scores: it models a
  profiling pass followed by a re-placed run, i.e. the two-phase
  oracle realized through the migration engine);
* ``max_overhead`` — a cumulative rate limit: migration time may never
  exceed this fraction of execution time so far, which is what lets
  ONLINE guarantee bounded degradation on stationary workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig, table1_config
from repro.gpu.simulator import EngineName, make_engine
from repro.gpu.trace import DramTrace, SimResult, WorkloadCharacteristics
from repro.memory.topology import SystemTopology
from repro.migration.cost import MigrationCostModel, paper_migration
from repro.migration.policy import EpochMigrationPolicy
from repro.migration.tracker import HotnessTracker


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migrated execution."""

    total_time_ns: float
    execution_time_ns: float
    migration_time_ns: float
    pages_migrated: int
    epochs: int
    final_zone_map: np.ndarray
    #: pages moved at each epoch boundary (ping-pong diagnostics).
    moves_per_epoch: tuple[int, ...] = ()
    #: aggregate engine result with the migration overhead folded into
    #: the total (``None`` only for legacy constructions).
    sim: Optional[SimResult] = field(default=None, repr=False)

    @property
    def throughput(self) -> float:
        return 1e9 / self.total_time_ns

    @property
    def overhead_fraction(self) -> float:
        """Share of total time spent migrating."""
        return self.migration_time_ns / self.total_time_ns


class MigrationSimulator:
    """Run a trace with epoch-boundary page migration."""

    def __init__(self, topology: SystemTopology,
                 config: GpuConfig | None = None,
                 cost_model: MigrationCostModel | None = None,
                 engine: EngineName = "throughput") -> None:
        self.topology = topology
        self.config = config if config is not None else table1_config()
        self.cost_model = (cost_model if cost_model is not None
                           else paper_migration())
        self.engine_name = engine
        self._engine = make_engine(engine, self.config)

    def _boundary_budget(self, max_overhead: Optional[float],
                         execution_ns: float,
                         migration_ns: float) -> Optional[int]:
        """Pages affordable at this boundary under the overhead cap."""
        if max_overhead is None:
            return None
        per_page = self.cost_model.total_time_ns(1)
        if per_page <= 0:
            return None  # free migration: the cap cannot bind
        allowed = max_overhead * execution_ns - migration_ns
        return max(0, int(allowed / per_page))

    def run(self, trace: DramTrace, initial_zone_map: np.ndarray,
            chars: WorkloadCharacteristics,
            policy: EpochMigrationPolicy,
            tracker_decay: float = 0.5,
            oracle_scores: Optional[np.ndarray] = None,
            plan_before_start: bool = False,
            max_overhead: Optional[float] = None) -> MigrationResult:
        if max_overhead is not None and max_overhead < 0:
            raise SimulationError("max_overhead must be >= 0 or None")
        zone_map = np.array(initial_zone_map, dtype=np.int16, copy=True)
        if zone_map.size != trace.footprint_pages:
            raise SimulationError(
                "initial zone map does not cover the trace footprint"
            )
        bo_used = int((zone_map == policy.bo_zone).sum())
        if bo_used > policy.bo_capacity_pages:
            raise SimulationError(
                f"initial placement holds {bo_used} BO pages, capacity "
                f"is {policy.bo_capacity_pages}"
            )

        tracker = HotnessTracker(trace.footprint_pages,
                                 decay=tracker_decay)
        if oracle_scores is not None:
            scores = np.asarray(oracle_scores, dtype=np.float64)
            if scores.shape != (trace.footprint_pages,):
                raise SimulationError(
                    "oracle_scores must cover the trace footprint"
                )
            tracker.observe_epoch(
                np.repeat(np.arange(trace.footprint_pages),
                          np.maximum(scores, 0).astype(np.int64))
            )
        raw_per_epoch = max(1, trace.n_raw_accesses // trace.n_epochs)
        execution_ns = 0.0
        migration_ns = 0.0
        moved = 0
        moves_per_epoch: list[int] = []
        n_zones = len(self.topology)
        bytes_by_zone = np.zeros(n_zones, dtype=np.float64)
        time_bandwidth = 0.0
        time_latency = 0.0
        time_compute = 0.0
        dram_accesses = 0
        mshr_merges = 0

        def apply_boundary() -> None:
            nonlocal migration_ns, moved
            budget = self._boundary_budget(max_overhead, execution_ns,
                                           migration_ns)
            plan = policy.plan(zone_map, tracker, budget_pages=budget)
            moves_per_epoch.append(plan.n_pages)
            if plan.n_pages:
                zone_map[plan.demote] = policy.co_zone
                zone_map[plan.promote] = policy.bo_zone
                if int((zone_map == policy.bo_zone).sum()) \
                        > policy.bo_capacity_pages:
                    raise SimulationError(
                        "migration plan exceeded BO capacity"
                    )
                migration_ns += self.cost_model.total_time_ns(plan.n_pages)
                moved += plan.n_pages

        if plan_before_start:
            if oracle_scores is None:
                raise SimulationError(
                    "plan_before_start requires oracle_scores (there is "
                    "nothing to plan from before the first epoch)"
                )
            apply_boundary()

        slices = trace.epoch_slices()
        for epoch, epoch_slice in enumerate(slices):
            pages = trace.page_indices[epoch_slice]
            if pages.size:
                sub_trace = DramTrace(
                    page_indices=pages,
                    footprint_pages=trace.footprint_pages,
                    n_raw_accesses=max(raw_per_epoch, pages.size),
                    n_epochs=1,
                    bytes_per_access=trace.bytes_per_access,
                    is_write=(trace.is_write[epoch_slice]
                              if trace.is_write is not None else None),
                )
                result = self._engine.run(sub_trace, zone_map,
                                          self.topology, chars)
                execution_ns += result.total_time_ns
                bytes_by_zone += result.bytes_by_zone
                time_bandwidth += result.time_bandwidth_ns
                time_latency += result.time_latency_ns
                time_compute += result.time_compute_ns
                dram_accesses += result.dram_accesses
                mshr_merges += result.mshr_merges
                if oracle_scores is None:
                    tracker.observe_epoch(pages)

            if epoch == len(slices) - 1:
                break  # nothing left to run; migrating would be waste
            apply_boundary()

        total = execution_ns + migration_ns
        if total <= 0:
            raise SimulationError("migrated run produced zero time")
        sim = SimResult(
            engine=f"{self.engine_name}+migration",
            total_time_ns=total,
            dram_accesses=dram_accesses,
            bytes_by_zone=bytes_by_zone,
            time_bandwidth_ns=time_bandwidth,
            time_latency_ns=time_latency,
            time_compute_ns=time_compute,
            mshr_merges=mshr_merges,
        )
        return MigrationResult(
            total_time_ns=total,
            execution_time_ns=execution_ns,
            migration_time_ns=migration_ns,
            pages_migrated=moved,
            epochs=trace.n_epochs,
            final_zone_map=zone_map,
            moves_per_epoch=tuple(moves_per_epoch),
            sim=sim,
        )
