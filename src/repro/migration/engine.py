"""Epoch-driven dynamic migration simulation.

Replays a workload trace one execution epoch at a time; between epochs
the migration policy may move pages, paying the Section 5.5 cost model.
This is the experiment the paper *argues about* without running —
"software-based page migration is a very expensive operation ...
focusing on online page migration before finding an optimized initial
placement policy is putting the cart before the horse" — made
quantitative: the extension bench compares static BW-AWARE/oracle
placement against online migration from good and bad starting points,
under measured and idealized migration costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SimulationError
from repro.gpu.config import GpuConfig, table1_config
from repro.gpu.throughput import ThroughputEngine
from repro.gpu.trace import DramTrace, WorkloadCharacteristics
from repro.memory.topology import SystemTopology
from repro.migration.cost import MigrationCostModel, paper_migration
from repro.migration.policy import EpochMigrationPolicy
from repro.migration.tracker import HotnessTracker


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migrated execution."""

    total_time_ns: float
    execution_time_ns: float
    migration_time_ns: float
    pages_migrated: int
    epochs: int
    final_zone_map: np.ndarray

    @property
    def throughput(self) -> float:
        return 1e9 / self.total_time_ns

    @property
    def overhead_fraction(self) -> float:
        """Share of total time spent migrating."""
        return self.migration_time_ns / self.total_time_ns


class MigrationSimulator:
    """Run a trace with epoch-boundary page migration."""

    def __init__(self, topology: SystemTopology,
                 config: GpuConfig | None = None,
                 cost_model: MigrationCostModel | None = None) -> None:
        self.topology = topology
        self.config = config if config is not None else table1_config()
        self.cost_model = (cost_model if cost_model is not None
                           else paper_migration())
        self._engine = ThroughputEngine(self.config)

    def run(self, trace: DramTrace, initial_zone_map: np.ndarray,
            chars: WorkloadCharacteristics,
            policy: EpochMigrationPolicy,
            tracker_decay: float = 0.5) -> MigrationResult:
        zone_map = np.array(initial_zone_map, dtype=np.int16, copy=True)
        if zone_map.size != trace.footprint_pages:
            raise SimulationError(
                "initial zone map does not cover the trace footprint"
            )
        bo_used = int((zone_map == policy.bo_zone).sum())
        if bo_used > policy.bo_capacity_pages:
            raise SimulationError(
                f"initial placement holds {bo_used} BO pages, capacity "
                f"is {policy.bo_capacity_pages}"
            )

        tracker = HotnessTracker(trace.footprint_pages,
                                 decay=tracker_decay)
        raw_per_epoch = max(1, trace.n_raw_accesses // trace.n_epochs)
        execution_ns = 0.0
        migration_ns = 0.0
        moved = 0

        slices = trace.epoch_slices()
        for epoch, epoch_slice in enumerate(slices):
            pages = trace.page_indices[epoch_slice]
            if pages.size:
                sub_trace = DramTrace(
                    page_indices=pages,
                    footprint_pages=trace.footprint_pages,
                    n_raw_accesses=max(raw_per_epoch, pages.size),
                    n_epochs=1,
                    bytes_per_access=trace.bytes_per_access,
                )
                result = self._engine.run(sub_trace, zone_map,
                                          self.topology, chars)
                execution_ns += result.total_time_ns
                tracker.observe_epoch(pages)

            if epoch == len(slices) - 1:
                break  # nothing left to run; migrating would be waste
            plan = policy.plan(zone_map, tracker)
            if plan.n_pages:
                zone_map[plan.demote] = policy.co_zone
                zone_map[plan.promote] = policy.bo_zone
                if int((zone_map == policy.bo_zone).sum()) > policy.bo_capacity_pages:
                    raise SimulationError(
                        "migration plan exceeded BO capacity"
                    )
                migration_ns += self.cost_model.total_time_ns(plan.n_pages)
                moved += plan.n_pages

        total = execution_ns + migration_ns
        if total <= 0:
            raise SimulationError("migrated run produced zero time")
        return MigrationResult(
            total_time_ns=total,
            execution_time_ns=execution_ns,
            migration_time_ns=migration_ns,
            pages_migrated=moved,
            epochs=trace.n_epochs,
            final_zone_map=zone_map,
        )
