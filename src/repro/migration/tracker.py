"""Online page-hotness tracking.

A dynamic migration system cannot use the two-phase oracle's perfect
counts; it must estimate hotness from what it has observed so far.
:class:`HotnessTracker` maintains per-page exponentially-decayed access
counters updated once per execution epoch — the software analogue of
the access-bit scanning / hardware counters an online page migrator
would rely on (the "costly dynamic page tracking" the paper's
annotation scheme is designed to avoid).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SimulationError


class HotnessTracker:
    """Per-page EMA access counters.

    ``decay`` controls history: 1.0 accumulates forever (converging to
    the oracle's aggregate counts), lower values track phase changes
    faster at the cost of noisier estimates.
    """

    def __init__(self, n_pages: int, decay: float = 0.5) -> None:
        if n_pages <= 0:
            raise SimulationError("tracker needs at least one page")
        if not 0.0 < decay <= 1.0:
            raise SimulationError(f"decay out of (0,1]: {decay}")
        self.n_pages = n_pages
        self.decay = decay
        self._scores = np.zeros(n_pages, dtype=np.float64)
        self.epochs_observed = 0

    @property
    def scores(self) -> np.ndarray:
        """Current hotness estimate per page (read-only view)."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    def observe_epoch(self, page_indices: np.ndarray) -> None:
        """Fold one epoch's DRAM accesses into the estimate."""
        page_indices = np.asarray(page_indices, dtype=np.int64)
        if page_indices.size and (page_indices.min() < 0
                                  or page_indices.max() >= self.n_pages):
            raise SimulationError("observed page outside tracked range")
        counts = np.bincount(page_indices, minlength=self.n_pages)
        self._scores *= self.decay
        self._scores += counts
        self.epochs_observed += 1

    def hottest(self, k: int) -> np.ndarray:
        """Indices of the ``k`` hottest pages, hottest first."""
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        k = min(k, self.n_pages)
        order = np.argsort(-self._scores, kind="stable")
        return order[:k]

    def reset(self) -> None:
        self._scores[:] = 0.0
        self.epochs_observed = 0
