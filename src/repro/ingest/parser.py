"""Streaming, bounded-memory parser for DRAMSim2 trace files.

External traces are the first genuinely untrusted input this system
accepts: they arrive over ``POST /v1/traces`` and ``repro ingest`` and
can be malformed, truncated, adversarially huge, or simply not traces
at all.  This parser therefore treats every byte as hostile:

* the two DRAMSim2 line formats (``k6`` and ``mase``) are validated
  line by line — ``<address> <command> <cycle>`` — and any deviation
  raises :class:`~repro.core.errors.IngestError` with a 1-based line
  and column pointing at the offending byte;
* hard resource caps (:class:`IngestLimits`: total bytes, line count,
  line length, distinct pages, wall-clock deadline) degrade to the
  same clean typed rejection instead of unbounded allocation or a
  parse that never returns;
* input is consumed in fixed-size chunks, so peak memory is bounded by
  the caps regardless of file size — nothing ever reads the whole
  upload into one string.

Addresses are remapped densely by first touch into footprint-page
coordinates (the :class:`~repro.gpu.trace.DramTrace` convention), and
cycles are retained so the mix harness can interleave several programs
by time.  The whole byte stream is SHA-256-hashed during the same
pass; the registry salts that digest into every cache key derived from
the trace.
"""

from __future__ import annotations

import hashlib
import io
import time
from array import array
from dataclasses import dataclass
from typing import BinaryIO, Optional, Union

import numpy as np

from repro.core.errors import ConfigError, IngestError
from repro.core.units import PAGE_SIZE

#: chunk size for streaming reads; also the unit the deadline and byte
#: cap are enforced at.
CHUNK_BYTES = 64 * 1024

#: k6 trace commands -> is_write (``None`` = event line with no memory
#: access, validated but not recorded).  Per DRAMSim2's
#: ``TraceBasedSim``: processor reads/fetches, writes, and bus-off
#: events.
K6_COMMANDS: dict[str, Optional[bool]] = {
    "P_MEM_RD": False,
    "P_FETCH": False,
    "P_MEM_WR": True,
    "BOFF": None,
}

#: mase trace commands -> is_write.
MASE_COMMANDS: dict[str, Optional[bool]] = {
    "READ": False,
    "IFETCH": False,
    "WRITE": True,
}

#: supported trace formats.
FORMATS: dict[str, dict[str, Optional[bool]]] = {
    "k6": K6_COMMANDS,
    "mase": MASE_COMMANDS,
}


@dataclass(frozen=True)
class IngestLimits:
    """Hard resource caps for one parse.

    Every cap rejects with a typed :class:`IngestError` instead of
    letting a hostile input exhaust memory (``max_bytes``,
    ``max_lines``, ``max_line_chars``, ``max_pages``) or wall-clock
    time (``deadline_s``).
    """

    max_bytes: int = 16 * 1024 * 1024
    max_lines: int = 1_000_000
    max_line_chars: int = 256
    max_pages: int = 1 << 16
    deadline_s: float = 30.0

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_lines", "max_line_chars",
                     "max_pages"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")


DEFAULT_LIMITS = IngestLimits()


@dataclass(frozen=True)
class ParsedTrace:
    """One successfully validated trace, in footprint coordinates."""

    name: str
    fmt: str
    #: SHA-256 of the raw source bytes, hex.
    sha256: str
    source_bytes: int
    source_lines: int
    #: dense first-touch page indices, one per memory access.
    page_indices: np.ndarray
    #: per-access write flag.
    is_write: np.ndarray
    #: per-access issue cycle (non-decreasing).
    cycles: np.ndarray
    footprint_pages: int

    @property
    def n_accesses(self) -> int:
        return int(self.page_indices.size)


def detect_format(filename: str,
                  explicit: Optional[str] = None) -> str:
    """Resolve the trace format: explicit choice or filename prefix.

    DRAMSim2's convention is that the base filename starts with the
    format name (``k6_foo.trc``, ``mase_bar.trc``); anything else needs
    the format named explicitly.
    """
    if explicit is not None:
        if explicit not in FORMATS:
            raise IngestError(
                f"unknown trace format {explicit!r}; "
                f"supported: {sorted(FORMATS)}", file=filename)
        return explicit
    base = filename.rsplit("/", 1)[-1].lower()
    for fmt in FORMATS:
        if base.startswith(fmt):
            return fmt
    raise IngestError(
        "cannot detect trace format from filename (expected a "
        f"'k6...' or 'mase...' prefix); pass the format explicitly",
        file=filename)


def _parse_address(token: str, name: str, line: int,
                   column: int) -> int:
    if token[:2].lower() == "0x":
        digits = token[2:]
        if digits and all(c in "0123456789abcdefABCDEF"
                          for c in digits):
            return int(digits, 16)
    elif token.isdigit():
        return int(token)
    raise IngestError(
        f"bad address {token!r} (expected 0x-prefixed hex or a "
        "non-negative decimal)", file=name, line=line, column=column)


def _parse_cycle(token: str, name: str, line: int, column: int) -> int:
    if not token.isdigit():
        raise IngestError(
            f"bad cycle {token!r} (expected a non-negative decimal)",
            file=name, line=line, column=column)
    return int(token)


def _tokenize(text: str) -> list[tuple[str, int]]:
    """``(token, 1-based column)`` pairs, split on spaces and tabs."""
    tokens: list[tuple[str, int]] = []
    i, n = 0, len(text)
    while i < n:
        if text[i] in " \t":
            i += 1
            continue
        start = i
        while i < n and text[i] not in " \t":
            i += 1
        tokens.append((text[start:i], start + 1))
    return tokens


class _TraceBuilder:
    """Accumulates validated accesses under the configured caps."""

    def __init__(self, name: str, fmt: str,
                 limits: IngestLimits) -> None:
        self.name = name
        self.fmt = fmt
        self.commands = FORMATS[fmt]
        self.limits = limits
        self.pages = array("q")
        self.cycles = array("q")
        self.flags = bytearray()
        self.page_map: dict[int, int] = {}
        self.last_cycle = -1
        self.n_lines = 0

    def feed_line(self, raw: bytes, line_no: int) -> None:
        self.n_lines = line_no
        if line_no > self.limits.max_lines:
            raise IngestError(
                f"line cap exceeded (max_lines={self.limits.max_lines})",
                file=self.name, line=line_no)
        if raw.endswith(b"\r"):
            raw = raw[:-1]
        if len(raw) > self.limits.max_line_chars:
            raise IngestError(
                f"line longer than {self.limits.max_line_chars} "
                "characters", file=self.name, line=line_no,
                column=self.limits.max_line_chars + 1)
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError as exc:
            raise IngestError(
                f"non-ASCII byte 0x{raw[exc.start]:02x}",
                file=self.name, line=line_no, column=exc.start + 1)
        stripped = text.strip()
        if not stripped or stripped.startswith(("#", ";")):
            return
        tokens = _tokenize(text)
        if len(tokens) != 3:
            column = tokens[3][1] if len(tokens) > 3 else 1
            raise IngestError(
                f"expected 3 fields <address> <command> <cycle>, "
                f"got {len(tokens)}", file=self.name, line=line_no,
                column=column)
        (addr_tok, addr_col), (cmd_tok, cmd_col), (cyc_tok, cyc_col) = (
            tokens)
        address = _parse_address(addr_tok, self.name, line_no, addr_col)
        try:
            is_write = self.commands[cmd_tok]
        except KeyError:
            raise IngestError(
                f"unknown {self.fmt} command {cmd_tok!r}; valid: "
                f"{sorted(self.commands)}", file=self.name,
                line=line_no, column=cmd_col)
        cycle = _parse_cycle(cyc_tok, self.name, line_no, cyc_col)
        if cycle < self.last_cycle:
            raise IngestError(
                f"cycle {cycle} moves backwards (previous "
                f"{self.last_cycle})", file=self.name, line=line_no,
                column=cyc_col)
        self.last_cycle = cycle
        if is_write is None:  # event line (BOFF): no memory access
            return
        page_addr = address // PAGE_SIZE
        index = self.page_map.get(page_addr)
        if index is None:
            index = len(self.page_map)
            if index >= self.limits.max_pages:
                raise IngestError(
                    "distinct-page cap exceeded "
                    f"(max_pages={self.limits.max_pages})",
                    file=self.name, line=line_no, column=addr_col)
            self.page_map[page_addr] = index
        self.pages.append(index)
        self.cycles.append(cycle)
        self.flags.append(1 if is_write else 0)

    def finish(self, total_bytes: int, sha256: str) -> ParsedTrace:
        if not self.pages:
            raise IngestError(
                "trace contains no memory accesses", file=self.name,
                line=self.n_lines or 1)
        return ParsedTrace(
            name=self.name,
            fmt=self.fmt,
            sha256=sha256,
            source_bytes=total_bytes,
            source_lines=self.n_lines,
            page_indices=np.asarray(self.pages, dtype=np.int64),
            is_write=np.frombuffer(bytes(self.flags),
                                   dtype=np.uint8).astype(bool),
            cycles=np.asarray(self.cycles, dtype=np.int64),
            footprint_pages=len(self.page_map),
        )


def parse_stream(stream: BinaryIO, fmt: str, name: str = "<stream>",
                 limits: IngestLimits = DEFAULT_LIMITS) -> ParsedTrace:
    """Parse one trace off a binary stream under the configured caps.

    Raises :class:`IngestError` — and nothing else — for any invalid,
    truncated, oversized, or deadline-busting input.
    """
    if fmt not in FORMATS:
        raise IngestError(
            f"unknown trace format {fmt!r}; supported: "
            f"{sorted(FORMATS)}", file=name)
    builder = _TraceBuilder(name, fmt, limits)
    hasher = hashlib.sha256()
    deadline = time.monotonic() + limits.deadline_s
    total = 0
    line_no = 0
    buffer = b""
    while True:
        if time.monotonic() >= deadline:
            raise IngestError(
                f"parse deadline exceeded "
                f"({limits.deadline_s:g}s)", file=name,
                line=line_no + 1)
        try:
            chunk = stream.read(CHUNK_BYTES)
        except OSError as exc:
            raise IngestError(f"read failed: {exc}", file=name,
                              line=line_no + 1)
        if not chunk:
            break
        total += len(chunk)
        if total > limits.max_bytes:
            raise IngestError(
                f"byte cap exceeded (max_bytes={limits.max_bytes})",
                file=name, line=line_no + 1)
        hasher.update(chunk)
        buffer += chunk
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1:]
            line_no += 1
            builder.feed_line(line, line_no)
        if len(buffer) > limits.max_line_chars + 1:
            raise IngestError(
                f"line longer than {limits.max_line_chars} "
                "characters", file=name, line=line_no + 1,
                column=limits.max_line_chars + 1)
    if buffer:  # final line without a trailing newline
        line_no += 1
        builder.feed_line(buffer, line_no)
    return builder.finish(total, hasher.hexdigest())


def parse_bytes(data: bytes, fmt: str, name: str = "<bytes>",
                limits: IngestLimits = DEFAULT_LIMITS) -> ParsedTrace:
    """Parse a trace held in memory (uploads spooled small)."""
    return parse_stream(io.BytesIO(data), fmt, name=name, limits=limits)


def parse_file(path: Union[str, "object"], fmt: Optional[str] = None,
               limits: IngestLimits = DEFAULT_LIMITS) -> ParsedTrace:
    """Parse a trace file, detecting the format from its name."""
    from pathlib import Path

    path = Path(path)
    resolved_fmt = detect_format(path.name, fmt)
    try:
        handle = path.open("rb")
    except OSError as exc:
        raise IngestError(f"cannot open trace file: {exc}",
                          file=str(path))
    with handle:
        return parse_stream(handle, resolved_fmt, name=path.name,
                            limits=limits)
