"""Multi-program trace mixes with per-member fault isolation.

Modeled on the Kill-Llama ``mix1``–``mix7`` DRAMSim2 benchmarks: 2–4
registered traces are interleaved *by cycle* into one heterogeneous
memory system, each member occupying its own slice of the footprint
(so placement policies see per-program data structures competing for
the same bandwidth-optimized capacity).

The mix spec grammar is ``mix:<a>+<b>[+<c>[+<d>]]`` where each member
is a registered trace name with an optional ``#sha12`` content pin.
The resolved workload's canonical name embeds every member's digest,
salting the result-cache key with the full mix content.

:func:`run_mix` is the fault-isolated co-scheduling harness: each
member is resolved and checksum-verified *individually* before the
sweep, so one corrupt or capped-out member fails with a structured
per-member error while the surviving members still run — and, because
the canonical name is rebuilt from survivors only, their results are
byte-identical to a run that never mentioned the corrupt member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.errors import IngestError, WorkloadError
from repro.core.units import PAGE_SIZE
from repro.gpu.trace import DramTrace
from repro.obs.log import log_event
from repro.workloads.base import (DEFAULT_RAW_ACCESSES,
                                  DataStructureSpec, TraceWorkload,
                                  lookup_trace, store_trace,
                                  trace_cache_key)

from .registry import TraceRegistry, default_registry
from .workload import (IngestedTraceWorkload, _RESOLVER_CACHE,
                       _resolve_record)

MIN_MIX_MEMBERS = 2
MAX_MIX_MEMBERS = 4


def parse_mix_spec(name: str) -> list[str]:
    """``"mix:a+b#1a2b"`` -> ``["a", "b#1a2b"]`` (validated)."""
    if not name.startswith("mix:"):
        raise WorkloadError(f"not a mix name: {name!r}")
    members = [m.strip() for m in name[len("mix:"):].split("+")]
    if any(not m for m in members):
        raise WorkloadError(
            f"malformed mix spec {name!r}: empty member (grammar: "
            "mix:<a>+<b>[+<c>[+<d>]], each member a registered trace "
            "name with optional #sha12)")
    if not MIN_MIX_MEMBERS <= len(members) <= MAX_MIX_MEMBERS:
        raise WorkloadError(
            f"mix needs {MIN_MIX_MEMBERS}-{MAX_MIX_MEMBERS} member "
            f"traces, got {len(members)} in {name!r}")
    bare = [m.partition("#")[0] for m in members]
    if len(set(bare)) != len(bare):
        raise WorkloadError(
            f"mix members must be distinct traces: {name!r}")
    return members


class IngestedMixWorkload(TraceWorkload):
    """2–4 registered traces interleaved by cycle, one footprint."""

    suite = "ingest"
    description = "multi-program mix of ingested DRAMSim2 traces"
    dataset_scales = {"default": 1.0}
    #: multiprogrammed streams overlap more memory requests than one
    #: program; keep the base parallelism (each member is itself a
    #: full post-cache stream).

    def __init__(self, members: Sequence[IngestedTraceWorkload]) -> None:
        self.members = tuple(members)
        self.name = "mix:" + "+".join(
            f"{m.record.name}#{m.record.short_sha}" for m in self.members)

    def define_structures(self, dataset: str = "default"
                          ) -> tuple[DataStructureSpec, ...]:
        return tuple(
            DataStructureSpec(
                name=member.record.name,
                size_bytes=max(
                    PAGE_SIZE,
                    member.record.footprint_pages * PAGE_SIZE),
                traffic_weight=float(member.record.n_accesses),
                pattern="uniform",
                read_fraction=1.0 - (member.record.n_writes
                                     / max(1, member.record.n_accesses)),
            )
            for member in self.members
        )

    def raw_access_stream(self, dataset: str = "default",
                          n_accesses: int = DEFAULT_RAW_ACCESSES,
                          seed: int = 0):
        raise WorkloadError(
            f"{self.name}: trace mixes are post-cache streams; no raw "
            "SM-issued stream exists")

    def dram_trace(self, dataset: str = "default",
                   n_accesses: int = DEFAULT_RAW_ACCESSES,
                   seed: int = 0, filtered: bool = True,
                   config=None, n_epochs: int = 16) -> DramTrace:
        """Cycle-ordered interleave of the members (memoized).

        Each member's pages are offset into its own footprint slice;
        the merged order is a *stable* sort on issue cycle, so
        within-member order is preserved exactly and equal-cycle ties
        break deterministically by member position.
        """
        self._check_dataset(dataset)
        key = trace_cache_key(self.name, dataset, n_accesses, seed,
                              filtered=filtered,
                              config_repr=(repr(config)
                                           if config is not None
                                           else None),
                              n_epochs=n_epochs)
        cached = lookup_trace(key)
        if cached is not None:
            return cached
        pages_parts: list[np.ndarray] = []
        flags_parts: list[np.ndarray] = []
        cycle_parts: list[np.ndarray] = []
        offset = 0
        for member in self.members:
            pages, flags, cycles = member._load()
            pages_parts.append(pages + offset)
            flags_parts.append(flags)
            cycle_parts.append(cycles)
            offset += member.record.footprint_pages
        all_cycles = np.concatenate(cycle_parts)
        order = np.argsort(all_cycles, kind="stable")
        trace = DramTrace(
            page_indices=np.concatenate(pages_parts)[order],
            footprint_pages=offset,
            n_raw_accesses=int(order.size),
            n_epochs=n_epochs,
            is_write=np.concatenate(flags_parts)[order],
        )
        store_trace(key, trace)
        return trace


def resolve_mix(name: str, registry: Optional[TraceRegistry] = None
                ) -> IngestedMixWorkload:
    """Resolve a ``mix:`` name into a workload (all members must be
    registered and match any ``#sha12`` pins)."""
    registry = registry or default_registry()
    member_specs = parse_mix_spec(name)
    members = []
    for spec in member_specs:
        record = _resolve_record(registry, spec)
        cache_key = (str(registry.root), record.canonical)
        member = _RESOLVER_CACHE.get(cache_key)
        if member is None:
            member = IngestedTraceWorkload(record, registry)
            _RESOLVER_CACHE[cache_key] = member
        members.append(member)
    mix = IngestedMixWorkload(members)
    mix_key = (str(registry.root), mix.name)
    cached = _RESOLVER_CACHE.get(mix_key)
    if cached is not None:
        return cached
    _RESOLVER_CACHE[mix_key] = mix
    return mix


# -- fault-isolated co-scheduling harness -----------------------------


@dataclass(frozen=True)
class MixMemberStatus:
    """Outcome of admitting one member into a mix run."""

    name: str
    ok: bool
    canonical: Optional[str] = None
    #: structured error for a failed member (IngestError.to_dict() or
    #: a {"reason": ...} shell for other workload errors).
    error: Optional[dict] = None
    accesses: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "canonical": self.canonical,
            "error": self.error,
            "accesses": self.accesses,
        }


@dataclass(frozen=True)
class MixOutcome:
    """A fault-isolated mix sweep: per-member statuses + the results
    of whatever subset survived admission."""

    requested: tuple[str, ...]
    members: tuple[MixMemberStatus, ...]
    #: canonical workload name actually swept (None when <1 member
    #: survived).
    workload_name: Optional[str]
    results: list = field(default_factory=list)
    manifest: Optional[object] = None

    @property
    def failed(self) -> tuple[MixMemberStatus, ...]:
        return tuple(m for m in self.members if not m.ok)

    @property
    def survivors(self) -> tuple[MixMemberStatus, ...]:
        return tuple(m for m in self.members if m.ok)


def run_mix(member_names: Sequence[str], policies: Sequence,
            runner, registry: Optional[TraceRegistry] = None,
            **spec_kwargs) -> MixOutcome:
    """Run *policies* over a mix of *member_names* with per-member
    fault isolation.

    Each member is resolved and checksum-verified up front; a corrupt
    or missing member becomes a structured :class:`MixMemberStatus`
    failure while the rest proceed.  The swept workload's canonical
    name is built from the survivors only, so survivor results are
    byte-identical to a run that never included the failed member.
    With one survivor the single trace runs standalone; with none, no
    sweep happens and the outcome only carries the failures.
    """
    from repro.runner.spec import make_spec

    registry = registry or default_registry()
    bare = [n[len("trace:"):] if n.startswith("trace:") else n
            for n in member_names]
    # reuse the spec-grammar validation (member count, distinctness)
    parse_mix_spec("mix:" + "+".join(bare))
    statuses: list[MixMemberStatus] = []
    survivors: list[IngestedTraceWorkload] = []
    for raw_name in member_names:
        spec = raw_name[len("trace:"):] if raw_name.startswith(
            "trace:") else raw_name
        try:
            record = _resolve_record(registry, spec)
            cache_key = (str(registry.root), record.canonical)
            member = _RESOLVER_CACHE.get(cache_key)
            if member is None:
                member = IngestedTraceWorkload(record, registry)
                _RESOLVER_CACHE[cache_key] = member
            member._load()  # force checksum verification now
        except IngestError as err:
            log_event("ingest.mix.member_failed", level="warning",
                      member=raw_name, reason=err.reason,
                      line=err.line)
            statuses.append(MixMemberStatus(
                name=raw_name, ok=False, error=err.to_dict()))
            continue
        except WorkloadError as err:
            log_event("ingest.mix.member_failed", level="warning",
                      member=raw_name, reason=str(err))
            statuses.append(MixMemberStatus(
                name=raw_name, ok=False, error={"reason": str(err)}))
            continue
        survivors.append(member)
        statuses.append(MixMemberStatus(
            name=raw_name, ok=True, canonical=member.record.canonical,
            accesses=member.record.n_accesses))

    if not survivors:
        return MixOutcome(requested=tuple(member_names),
                          members=tuple(statuses), workload_name=None)
    if len(survivors) == 1:
        workload: TraceWorkload = survivors[0]
    else:
        workload = IngestedMixWorkload(survivors)
        _RESOLVER_CACHE[(str(registry.root), workload.name)] = workload
    specs = [make_spec(workload.name, policy, **spec_kwargs)
             for policy in policies]
    outcome = runner.run(specs)
    return MixOutcome(
        requested=tuple(member_names),
        members=tuple(statuses),
        workload_name=workload.name,
        results=list(outcome.results),
        manifest=outcome.manifest,
    )
