"""Hardened ingestion of external DRAMSim2 traces.

Layers, bottom up:

* :mod:`~repro.ingest.parser` — streaming, bounded-memory validation
  of untrusted ``k6``/``mase`` trace bytes with line-precise
  :class:`~repro.core.errors.IngestError` rejection and hard resource
  caps;
* :mod:`~repro.ingest.registry` — sha256-checksummed admission under
  the cache root, with quarantine of rejected inputs and
  corruption-detected loads;
* :mod:`~repro.ingest.workload` — adapter exposing registered traces
  as workloads (``trace:<name>#<sha12>``) through the standard memo /
  shm-arena / result-cache path;
* :mod:`~repro.ingest.mix` — Kill-Llama-style multi-program mixes
  (``mix:<a>+<b>``) with per-member fault isolation.
"""

from repro.core.errors import IngestError

from .mix import (IngestedMixWorkload, MixMemberStatus, MixOutcome,
                  parse_mix_spec, resolve_mix, run_mix)
from .parser import (DEFAULT_LIMITS, FORMATS, IngestLimits, ParsedTrace,
                     detect_format, parse_bytes, parse_file,
                     parse_stream)
from .registry import (QUARANTINE_DIRNAME, TRACE_DIR_ENV,
                       TraceRecord, TraceRegistry, default_registry,
                       default_root, sanitize_name, set_default_root)
from .workload import (IngestedTraceWorkload, clear_resolver_cache,
                       resolve_workload)

__all__ = [
    "DEFAULT_LIMITS",
    "FORMATS",
    "IngestError",
    "IngestLimits",
    "IngestedMixWorkload",
    "IngestedTraceWorkload",
    "MixMemberStatus",
    "MixOutcome",
    "ParsedTrace",
    "QUARANTINE_DIRNAME",
    "TRACE_DIR_ENV",
    "TraceRecord",
    "TraceRegistry",
    "clear_resolver_cache",
    "default_registry",
    "default_root",
    "detect_format",
    "parse_bytes",
    "parse_file",
    "parse_mix_spec",
    "parse_stream",
    "resolve_mix",
    "resolve_workload",
    "run_mix",
    "sanitize_name",
    "set_default_root",
]
