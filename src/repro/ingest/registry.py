"""Checksummed trace registry with quarantine for rejected uploads.

Successfully parsed traces are admitted under ``<root>/<name>/`` as an
``.npz`` payload plus a ``meta.json`` record carrying two digests: the
SHA-256 of the raw source bytes (salted into every cache key derived
from the trace) and the SHA-256 of the stored arrays (verified on every
load, so silent on-disk corruption surfaces as a typed
:class:`~repro.core.errors.IngestError` instead of wrong results).

Rejected inputs are quarantined — a bounded directory of
``<stamp>.trace`` snippets with ``.reason.json`` sidecars, oldest
evicted first — mirroring the result cache's quarantine conventions so
operators find all poison in one familiar place.

A module-level default root lets fork-based sweep workers inherit the
registry the parent configured (``set_default_root``); standalone use
falls back to ``$REPRO_TRACE_DIR`` or ``<cache root>/traces``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Optional, Union

import numpy as np

from repro.core.atomicio import atomic_write_json
from repro.core.cachedir import cache_root
from repro.core.errors import IngestError
from repro.obs import trace as obs_trace
from repro.obs.log import log_event

from .parser import (DEFAULT_LIMITS, IngestLimits, ParsedTrace,
                     detect_format, parse_stream)

TRACES_DIRNAME = "traces"
QUARANTINE_DIRNAME = "quarantine"
DEFAULT_MAX_QUARANTINED = 16
#: at most this many bytes of a rejected input are preserved for
#: post-mortem — enough to see the offending line, never the whole
#: hostile payload.
QUARANTINE_SNIPPET_BYTES = 64 * 1024

#: environment override for the default registry root (workers on
#: spawn-based platforms pick the root up from here).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.\-]{0,63}$")

_PAYLOAD_FILE = "trace.npz"
_META_FILE = "meta.json"

_DEFAULT_ROOT: Optional[Path] = None


def sanitize_name(name: str) -> str:
    """Validate a registry name; path traversal is structurally
    impossible for anything this accepts."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise IngestError(
            f"invalid trace name {name!r}: must match "
            "[a-z0-9][a-z0-9_.-]{0,63} (lowercase, no slashes)",
            file=str(name)[:80] or "<empty>")
    if ".." in name:
        raise IngestError(f"invalid trace name {name!r}",
                          file=name[:80])
    return name


@dataclass(frozen=True)
class TraceRecord:
    """Admission metadata for one registered trace."""

    name: str
    fmt: str
    #: SHA-256 of the raw source bytes.
    sha256: str
    #: SHA-256 of the stored arrays (corruption check on load).
    payload_sha256: str
    n_accesses: int
    n_writes: int
    footprint_pages: int
    source_bytes: int
    source_lines: int
    created: float

    @property
    def short_sha(self) -> str:
        return self.sha256[:12]

    @property
    def canonical(self) -> str:
        """Workload name carrying the content digest, e.g.
        ``trace:stream#1a2b3c4d5e6f`` — the digest salts every cache
        key derived from this trace."""
        return f"trace:{self.name}#{self.short_sha}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fmt": self.fmt,
            "sha256": self.sha256,
            "payload_sha256": self.payload_sha256,
            "n_accesses": self.n_accesses,
            "n_writes": self.n_writes,
            "footprint_pages": self.footprint_pages,
            "source_bytes": self.source_bytes,
            "source_lines": self.source_lines,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceRecord":
        try:
            return cls(
                name=str(payload["name"]),
                fmt=str(payload["fmt"]),
                sha256=str(payload["sha256"]),
                payload_sha256=str(payload["payload_sha256"]),
                n_accesses=int(payload["n_accesses"]),
                n_writes=int(payload["n_writes"]),
                footprint_pages=int(payload["footprint_pages"]),
                source_bytes=int(payload["source_bytes"]),
                source_lines=int(payload["source_lines"]),
                created=float(payload["created"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IngestError(f"corrupt trace record: {exc}",
                              file=str(payload.get("name", "<meta>")))


def _payload_digest(pages: np.ndarray, flags: np.ndarray,
                    cycles: np.ndarray) -> str:
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(pages, dtype=np.int64).tobytes())
    hasher.update(np.ascontiguousarray(flags,
                                       dtype=np.uint8).tobytes())
    hasher.update(np.ascontiguousarray(cycles,
                                       dtype=np.int64).tobytes())
    return hasher.hexdigest()


class TraceRegistry:
    """Content-addressed store of admitted traces under one root."""

    def __init__(self, root: Union[str, Path],
                 max_quarantined: int = DEFAULT_MAX_QUARANTINED) -> None:
        self.root = Path(root)
        self.max_quarantined = max(1, int(max_quarantined))

    # -- admission -----------------------------------------------------

    def admit(self, source: Union[bytes, Path, str, BinaryIO],
              name: Optional[str] = None, fmt: Optional[str] = None,
              limits: IngestLimits = DEFAULT_LIMITS) -> TraceRecord:
        """Parse-validate *source* and admit it under *name*.

        Rejections are quarantined (bounded, oldest-evicted) and the
        :class:`IngestError` re-raised so callers report the precise
        line/column.  Re-admitting an existing name overwrites it —
        that is the warm re-ingest path for a fixed file.
        """
        label, stream, snippet_fn = self._open_source(source, name)
        if name is None:
            name = _derive_name(label)
        name = sanitize_name(name)
        try:
            resolved_fmt = detect_format(label, fmt)
            with obs_trace.span("ingest.parse", cat="ingest",
                                trace=name, fmt=resolved_fmt):
                parsed = parse_stream(stream, resolved_fmt, name=label,
                                      limits=limits)
        except IngestError as err:
            self._quarantine(label, snippet_fn(), err)
            raise
        finally:
            stream.close()
        with obs_trace.span("ingest.admit", cat="ingest", trace=name,
                            accesses=parsed.n_accesses):
            record = self._store(name, parsed)
        log_event("ingest.admitted", name=name, fmt=record.fmt,
                  sha256=record.short_sha, accesses=record.n_accesses,
                  footprint_pages=record.footprint_pages)
        return record

    def _open_source(self, source, name):
        """Normalize *source* → (label, binary stream, snippet thunk).

        The snippet thunk re-reads at most
        :data:`QUARANTINE_SNIPPET_BYTES` for the quarantine record and
        must work even after a parse failure partway through the
        stream.
        """
        if isinstance(source, (bytes, bytearray)):
            data = bytes(source)
            label = name or "<bytes>"
            return (label, io.BytesIO(data),
                    lambda: data[:QUARANTINE_SNIPPET_BYTES])
        if isinstance(source, (str, Path)):
            path = Path(source)
            try:
                handle = path.open("rb")
            except OSError as exc:
                raise IngestError(f"cannot open trace file: {exc}",
                                  file=str(path))

            def snippet() -> bytes:
                try:
                    with path.open("rb") as again:
                        return again.read(QUARANTINE_SNIPPET_BYTES)
                except OSError:
                    return b""

            return (path.name, handle, snippet)
        # file-like (spooled upload): assume seekable
        stream = source

        def snippet() -> bytes:
            try:
                stream.seek(0)
                return stream.read(QUARANTINE_SNIPPET_BYTES)
            except (OSError, ValueError):
                return b""

        label = name or getattr(stream, "name", None) or "<stream>"
        return (str(label), stream, snippet)

    def _store(self, name: str, parsed: ParsedTrace) -> TraceRecord:
        entry = self.root / name
        entry.mkdir(parents=True, exist_ok=True)
        flags = parsed.is_write.astype(np.uint8)
        payload_sha = _payload_digest(parsed.page_indices, flags,
                                      parsed.cycles)
        record = TraceRecord(
            name=name,
            fmt=parsed.fmt,
            sha256=parsed.sha256,
            payload_sha256=payload_sha,
            n_accesses=parsed.n_accesses,
            n_writes=int(np.count_nonzero(flags)),
            footprint_pages=parsed.footprint_pages,
            source_bytes=parsed.source_bytes,
            source_lines=parsed.source_lines,
            created=time.time(),
        )
        payload_path = entry / _PAYLOAD_FILE
        tmp = payload_path.with_name(
            payload_path.name + f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                np.savez(handle, page_indices=parsed.page_indices,
                         is_write=flags, cycles=parsed.cycles)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, payload_path)
        finally:
            tmp.unlink(missing_ok=True)
        atomic_write_json(entry / _META_FILE, record.to_dict(),
                          indent=2)
        return record

    # -- quarantine ----------------------------------------------------

    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def _quarantine(self, label: str, snippet: bytes,
                    err: IngestError) -> None:
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            stamp = f"{time.time():.6f}-{os.getpid()}"
            (qdir / f"{stamp}.trace").write_bytes(
                snippet[:QUARANTINE_SNIPPET_BYTES])
            atomic_write_json(qdir / f"{stamp}.reason.json", {
                "source": label,
                "error": err.to_dict(),
            }, indent=2)
            self._bound_quarantine(qdir)
        except OSError:
            pass  # quarantine is best-effort; the rejection still stands
        log_event("ingest.quarantined", level="warning", source=label,
                  reason=err.reason, line=err.line, column=err.column)

    def _bound_quarantine(self, qdir: Path) -> None:
        entries = sorted(qdir.glob("*.trace"),
                         key=lambda p: p.stat().st_mtime)
        while len(entries) > self.max_quarantined:
            victim = entries.pop(0)
            victim.unlink(missing_ok=True)
            victim.with_name(victim.name.replace(
                ".trace", ".reason.json")).unlink(missing_ok=True)

    def quarantined_count(self) -> int:
        try:
            return len(list(self.quarantine_dir().glob("*.trace")))
        except OSError:
            return 0

    # -- retrieval -----------------------------------------------------

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and entry.name != QUARANTINE_DIRNAME
            and (entry / _META_FILE).is_file())

    def record(self, name: str) -> Optional[TraceRecord]:
        """Metadata only — cheap enough for name canonicalization on
        every :func:`~repro.runner.spec.make_spec` call."""
        name = sanitize_name(name)
        meta_path = self.root / name / _META_FILE
        try:
            payload = json.loads(meta_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise IngestError(f"corrupt trace record: {exc}",
                              file=str(meta_path))
        return TraceRecord.from_dict(payload)

    def load(self, name: str):
        """Load arrays for *name*, verifying the payload checksum.

        Returns ``(record, page_indices, is_write, cycles)``.  A
        mismatch or unreadable payload moves the entry to quarantine
        and raises — a corrupt registry entry must never flow into a
        simulation as wrong data.
        """
        record = self.record(name)
        if record is None:
            raise IngestError(f"no ingested trace named {name!r}",
                              file=name)
        payload_path = self.root / name / _PAYLOAD_FILE
        try:
            with np.load(payload_path) as payload:
                pages = np.asarray(payload["page_indices"],
                                   dtype=np.int64)
                flags = np.asarray(payload["is_write"], dtype=np.uint8)
                cycles = np.asarray(payload["cycles"], dtype=np.int64)
        except (OSError, KeyError, ValueError) as exc:
            self._evict_corrupt(name, f"unreadable payload: {exc}")
            raise IngestError(
                f"registry payload unreadable for {name!r}: {exc}",
                file=str(payload_path))
        if _payload_digest(pages, flags, cycles) != record.payload_sha256:
            self._evict_corrupt(name, "payload checksum mismatch")
            raise IngestError(
                f"registry checksum mismatch for {name!r}: stored "
                "arrays do not match the admitted digest",
                file=str(payload_path))
        return record, pages, flags.astype(bool), cycles

    def _evict_corrupt(self, name: str, reason: str) -> None:
        entry = self.root / name
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            stamp = f"{time.time():.6f}-{os.getpid()}"
            for fname in (_PAYLOAD_FILE, _META_FILE):
                src = entry / fname
                if src.is_file():
                    os.replace(src, qdir / f"{stamp}.{name}.{fname}")
            entry.rmdir()
        except OSError:
            pass
        log_event("ingest.registry_corrupt", level="error", name=name,
                  reason=reason)


def _derive_name(label: str) -> str:
    """Default registry name from a filename: stem, lowercased, with
    unsupported characters collapsed to underscores."""
    stem = Path(label).stem.lower() or "trace"
    cleaned = re.sub(r"[^a-z0-9_.\-]", "_", stem)[:64]
    if not re.match(r"^[a-z0-9]", cleaned):
        cleaned = "t" + cleaned[:63]
    return cleaned


# -- module default root ----------------------------------------------


def default_root() -> Path:
    """Resolution order: :func:`set_default_root` > ``$REPRO_TRACE_DIR``
    > ``<cache root>/traces``."""
    if _DEFAULT_ROOT is not None:
        return _DEFAULT_ROOT
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env)
    return cache_root(None) / TRACES_DIRNAME


def set_default_root(root: Union[str, Path, None]) -> None:
    """Install the process-wide default registry root.

    Fork-based sweep workers inherit this global, so traces resolved in
    the parent resolve identically in workers.  (Spawn platforms fall
    back to ``$REPRO_TRACE_DIR`` / the cache root.)
    """
    global _DEFAULT_ROOT
    _DEFAULT_ROOT = Path(root) if root is not None else None
    # resolver memos key on the root; a changed root must not serve
    # workloads from the previous one
    from . import workload as _workload
    _workload.clear_resolver_cache()


def default_registry() -> TraceRegistry:
    return TraceRegistry(default_root())
