"""Workload adapter exposing registered traces to the simulator.

:class:`IngestedTraceWorkload` wraps one admitted trace as a
:class:`~repro.workloads.base.TraceWorkload` whose ``dram_trace``
replays the registered access stream verbatim instead of synthesizing
one.  Its workload *name* is the registry record's canonical form —
``trace:<name>#<sha12>`` — so the content digest is salted into every
:class:`~repro.runner.spec.RunSpec` cache key: re-ingesting a changed
file under the same name yields different cache keys, and a stale
result can never be served for new bytes.

The adapter consults the same trace-memo seam as synthetic workloads
(:func:`~repro.workloads.base.lookup_trace` /
:func:`~repro.workloads.base.store_trace`), so ingested traces flow
through the shm arena and result cache exactly like synthetic ones.

:func:`resolve_workload` is the entry point
:func:`repro.workloads.suite.get_workload` delegates ``trace:`` and
``mix:`` names to.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import IngestError, WorkloadError
from repro.core.units import PAGE_SIZE
from repro.gpu.trace import DramTrace
from repro.workloads.base import (DEFAULT_RAW_ACCESSES,
                                  DataStructureSpec, TraceWorkload,
                                  lookup_trace, store_trace,
                                  trace_cache_key)

from .registry import TraceRegistry, TraceRecord, default_registry

#: (registry root, canonical name) -> workload; bounded by the number
#: of distinct ingested traces used in one process.
_RESOLVER_CACHE: dict[tuple[str, str], TraceWorkload] = {}


def clear_resolver_cache() -> None:
    _RESOLVER_CACHE.clear()


class IngestedTraceWorkload(TraceWorkload):
    """One registered external trace, replayed verbatim."""

    suite = "ingest"
    description = "externally ingested DRAMSim2 trace"
    dataset_scales = {"default": 1.0}

    def __init__(self, record: TraceRecord,
                 registry: TraceRegistry) -> None:
        self.record = record
        self.registry = registry
        self.name = record.canonical
        self._arrays: Optional[tuple] = None

    # -- loading -------------------------------------------------------

    def _load(self) -> tuple:
        """(page_indices, is_write, cycles), checksum-verified once."""
        if self._arrays is None:
            record, pages, flags, cycles = self.registry.load(
                self.record.name)
            if record.sha256 != self.record.sha256:
                raise IngestError(
                    f"trace {self.record.name!r} was re-ingested with "
                    f"different content (expected {self.record.short_sha}, "
                    f"registry now has {record.short_sha})",
                    file=self.record.name)
            self._arrays = (pages, flags, cycles)
        return self._arrays

    # -- TraceWorkload surface -----------------------------------------

    def define_structures(self, dataset: str = "default"
                          ) -> tuple[DataStructureSpec, ...]:
        rec = self.record
        write_fraction = rec.n_writes / max(1, rec.n_accesses)
        return (DataStructureSpec(
            name="trace",
            size_bytes=max(PAGE_SIZE, rec.footprint_pages * PAGE_SIZE),
            traffic_weight=float(rec.n_accesses),
            pattern="uniform",
            read_fraction=1.0 - write_fraction,
        ),)

    def raw_access_stream(self, dataset: str = "default",
                          n_accesses: int = DEFAULT_RAW_ACCESSES,
                          seed: int = 0):
        raise WorkloadError(
            f"{self.name}: ingested traces are post-cache streams; "
            "no raw SM-issued stream exists")

    def dram_trace(self, dataset: str = "default",
                   n_accesses: int = DEFAULT_RAW_ACCESSES,
                   seed: int = 0, filtered: bool = True,
                   config=None, n_epochs: int = 16) -> DramTrace:
        """The registered trace, verbatim (memoized like synthesis).

        ``n_accesses``/``seed``/``filtered`` do not alter the replayed
        stream — the trace *is* the post-cache stream — but stay in the
        memo key so the shm planner and cache agree with synthetic
        workloads' keying.
        """
        self._check_dataset(dataset)
        key = trace_cache_key(self.name, dataset, n_accesses, seed,
                              filtered=filtered,
                              config_repr=(repr(config)
                                           if config is not None
                                           else None),
                              n_epochs=n_epochs)
        cached = lookup_trace(key)
        if cached is not None:
            return cached
        pages, flags, _cycles = self._load()
        trace = DramTrace(
            page_indices=pages,
            footprint_pages=self.record.footprint_pages,
            n_raw_accesses=int(pages.size),
            n_epochs=n_epochs,
            is_write=flags,
        )
        store_trace(key, trace)
        return trace


def _split_fragment(spec: str) -> tuple[str, Optional[str]]:
    """``"stream#1a2b"`` -> ``("stream", "1a2b")``."""
    if "#" in spec:
        name, _, fragment = spec.partition("#")
        return name, fragment
    return spec, None


def _resolve_record(registry: TraceRegistry, spec: str) -> TraceRecord:
    name, fragment = _split_fragment(spec)
    try:
        record = registry.record(name)
    except IngestError as exc:
        raise WorkloadError(str(exc))
    if record is None:
        from repro.workloads.suite import unknown_workload_message
        raise WorkloadError(unknown_workload_message(f"trace:{spec}"))
    if fragment and not record.sha256.startswith(fragment.lower()):
        raise WorkloadError(
            f"trace:{name} checksum mismatch: requested #{fragment} "
            f"but the registry holds #{record.short_sha} — the trace "
            "was re-ingested with different content")
    return record


def resolve_workload(name: str,
                     registry: Optional[TraceRegistry] = None
                     ) -> TraceWorkload:
    """Resolve a ``trace:<name>[#sha12]`` or ``mix:<a>+<b>...`` name.

    Raises :class:`WorkloadError` for unknown names or stale checksum
    fragments.  Resolved workloads are memoized per (registry root,
    canonical name) so repeated ``get_workload`` calls share loaded
    arrays.
    """
    registry = registry or default_registry()
    if name.startswith("mix:"):
        from .mix import resolve_mix
        return resolve_mix(name, registry)
    if not name.startswith("trace:"):
        raise WorkloadError(f"not an ingested-trace name: {name!r}")
    record = _resolve_record(registry, name[len("trace:"):])
    cache_key = (str(registry.root), record.canonical)
    cached = _RESOLVER_CACHE.get(cache_key)
    if cached is not None:
        return cached
    workload = IngestedTraceWorkload(record, registry)
    _RESOLVER_CACHE[cache_key] = workload
    return workload
