"""A CUDA-runtime-shaped facade over the OS and simulator layers.

Section 5.2 extends ``cudaMalloc`` with an abstract placement hint::

    cudaMalloc(void **devPtr, size_t size, enum hint)

:class:`CudaRuntime` provides that API surface: it owns a process on a
topology, translates hints through :class:`AnnotatedPolicy`, honors the
capacity-fallback semantics, and can launch a workload "kernel" on the
simulator to time the resulting placement.  Examples and integration
tests use it as the top of the stack; the experiment harness drives the
lower layers directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import AllocationError
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import EngineName, GpuSystemSimulator
from repro.gpu.trace import SimResult
from repro.memory.topology import SystemTopology, simulated_baseline
from repro.policies.annotated import AnnotatedPolicy, PlacementHint, coerce_hint
from repro.vm.page import Allocation
from repro.vm.process import Process
from repro.workloads.base import TraceWorkload


@dataclass(frozen=True)
class DevicePointer:
    """What ``cudaMalloc`` hands back: an opaque device address."""

    address: int
    allocation: Allocation

    @property
    def size_bytes(self) -> int:
        return self.allocation.size_bytes

    @property
    def name(self) -> str:
        return self.allocation.name


class CudaRuntime:
    """Hint-aware memory allocator plus kernel-launch timing."""

    def __init__(self, topology: Optional[SystemTopology] = None,
                 config: Optional[GpuConfig] = None,
                 engine: EngineName = "throughput",
                 seed: int = 0) -> None:
        self.topology = topology if topology is not None else simulated_baseline()
        self._policy = AnnotatedPolicy()
        self.process = Process(self.topology, policy=self._policy, seed=seed)
        self.simulator = GpuSystemSimulator(self.topology, config, engine)

    def cuda_malloc(self, size: int,
                    hint: Union[PlacementHint, str, None] = None,
                    name: str = "", hotness: float = 1.0) -> DevicePointer:
        """Allocate device-visible memory with an optional hint.

        Hints are best effort: a full pool spills to the other pool, and
        omitting the hint falls back to BW-AWARE placement, exactly as
        Section 5.2 specifies.
        """
        if size <= 0:
            raise AllocationError("cudaMalloc size must be positive")
        allocation = self.process.mmap(
            size, name=name, hint=coerce_hint(hint), hotness=hotness
        )
        return DevicePointer(address=allocation.va_start,
                             allocation=allocation)

    def cuda_free(self, pointer: DevicePointer) -> None:
        """Release the physical backing of an allocation."""
        self.process.free(pointer.allocation)

    def malloc_workload(self, workload: TraceWorkload,
                        dataset: str = "default",
                        hints: Optional[dict] = None
                        ) -> list[DevicePointer]:
        """Allocate every data structure of a workload, in program order."""
        pointers = []
        for spec in workload.data_structures(dataset):
            hint = (hints or {}).get(spec.name)
            pointers.append(self.cuda_malloc(
                spec.size_bytes, hint=hint, name=spec.name,
                hotness=spec.hotness_density,
            ))
        return pointers

    def launch(self, workload: TraceWorkload, dataset: str = "default",
               n_accesses: Optional[int] = None,
               seed: int = 0) -> SimResult:
        """Run the workload's kernel against the current placement.

        All of the workload's structures must already be allocated (via
        :meth:`malloc_workload` or individual ``cuda_malloc`` calls in
        program order).
        """
        expected = workload.footprint_pages(dataset)
        zone_map = self.process.zone_map()
        if zone_map.size != expected:
            raise AllocationError(
                f"{workload.name} expects {expected} mapped pages, found "
                f"{zone_map.size}; allocate with malloc_workload() first"
            )
        kwargs = {} if n_accesses is None else {"n_accesses": n_accesses}
        trace = workload.dram_trace(dataset, seed=seed, **kwargs)
        return self.simulator.simulate(
            trace, zone_map, workload.characteristics(dataset)
        )

    def memory_info(self) -> dict[str, tuple[int, int]]:
        """``cudaMemGetInfo``-style (used, capacity) pages per zone."""
        occupancy = self.process.physical.occupancy()
        return {
            self.topology.zone(zone_id).name: usage
            for zone_id, usage in occupancy.items()
        }
