"""CUDA-runtime-shaped APIs: hinted cudaMalloc and GetAllocation."""

from repro.policies.annotated import PlacementHint
from repro.runtime.cuda import CudaRuntime, DevicePointer
from repro.runtime.hints import get_allocation, hints_from_profile

__all__ = [
    "PlacementHint",
    "CudaRuntime",
    "DevicePointer",
    "get_allocation",
    "hints_from_profile",
]
