"""The Section 5.3 annotation runtime: ``GetAllocation``.

Figure 9's pseudo-code hoists per-allocation sizes and hotness values
into two arrays and asks a runtime routine to turn them — together with
the discovered machine bandwidth topology — into per-allocation
placement hints.  :func:`get_allocation` is that routine:

* if BW-AWARE placement fits within BO capacity anyway (the footprint's
  BO share is below the BO pool size), *every* allocation gets the BW
  hint — hotness is irrelevant without a capacity constraint;
* otherwise allocations are ranked by hotness density and the hottest
  are hinted into BO until its capacity is spoken for; the rest are
  hinted CO.

Hotness values are machine-independent (relative access counts from the
profiler or the programmer's intuition), so annotated programs remain
performance portable: the same annotations re-specialize on any
topology at run time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.errors import PolicyError
from repro.core.units import PAGE_SIZE, bytes_to_pages
from repro.memory.acpi import FirmwareTables
from repro.policies.annotated import PlacementHint
from repro.profiling.profiler import WorkloadProfile
from repro.workloads.base import TraceWorkload


def get_allocation(sizes: Sequence[int], hotness: Sequence[float],
                   tables: FirmwareTables,
                   bo_capacity_bytes: int,
                   bo_domain: Optional[int] = None
                   ) -> list[PlacementHint]:
    """Compute placement hints for a program's allocations.

    ``sizes`` and ``hotness`` are parallel arrays in allocation order
    (Figure 9); ``hotness`` is *total* relative traffic per allocation —
    the ranking key is hotness per byte.  ``bo_capacity_bytes`` is the
    bandwidth-optimized pool size discovered by the runtime.

    Ordering contract: allocations are ranked by hotness density
    (``hotness[i] / sizes[i]``) descending, and allocations with *equal*
    density are ranked by allocation index ascending — the earliest
    allocation wins the remaining BO space.  The output is therefore a
    pure function of the ``(sizes, hotness)`` arrays: it never depends
    on dict iteration order, sort incidentals, or any other container
    artifact of the caller.
    """
    if len(sizes) != len(hotness):
        raise PolicyError("sizes and hotness arrays must align")
    if not sizes:
        return []
    if any(size <= 0 for size in sizes):
        raise PolicyError("allocation sizes must be positive")
    if any(h < 0 for h in hotness):
        raise PolicyError("hotness values must be >= 0")
    if bo_capacity_bytes < 0:
        raise PolicyError("bo_capacity_bytes must be >= 0")

    if bo_domain is None:
        bandwidths = tables.sbit.bandwidth_gbps
        bo_domain = max(range(len(bandwidths)), key=bandwidths.__getitem__)
    bo_fraction = tables.sbit.fractions()[bo_domain]

    footprint_pages = sum(bytes_to_pages(size) for size in sizes)
    bo_capacity_pages = bo_capacity_bytes // PAGE_SIZE

    # Unconstrained case: BW-AWARE would place bo_fraction of the
    # footprint in BO; if that fits, hotness does not matter.
    if footprint_pages * bo_fraction <= bo_capacity_pages:
        return [PlacementHint.BW_AWARE] * len(sizes)

    # Constrained case: hottest-per-byte structures into BO until the
    # pool is spoken for.  A structure larger than the remaining BO
    # space still gets the BO hint: its prefix fills the pool and the
    # overflow spills to CO (the Section 5.2 fallback), which keeps the
    # scarce BO pages fully utilized by the hottest structures.
    # Rank by (density desc, allocation index asc).  The explicit index
    # tie-break keeps equal-density orderings deterministic rather than
    # an accident of sort stability (see the docstring contract).
    density = [
        (hotness[i] / max(sizes[i], 1), i) for i in range(len(sizes))
    ]
    density.sort(key=lambda pair: (-pair[0], pair[1]))
    hints = [PlacementHint.CAPACITY_OPTIMIZED] * len(sizes)
    remaining = bo_capacity_pages
    for _, index in density:
        if remaining <= 0:
            break
        hints[index] = PlacementHint.BANDWIDTH_OPTIMIZED
        remaining -= bytes_to_pages(sizes[index])
    return hints


def hints_from_profile(workload: TraceWorkload,
                       profile: WorkloadProfile,
                       tables: FirmwareTables,
                       bo_capacity_bytes: int,
                       dataset: str = "default"
                       ) -> dict[str, PlacementHint]:
    """Turn a training-run profile into per-structure hints.

    This is the full Section 5 workflow glued together: the profiler's
    per-structure access counts become the hotness array, the workload's
    allocation sizes (possibly for a *different* dataset than the
    profile was trained on — the Figure 11 scenario) become the size
    array, and :func:`get_allocation` computes the hints.
    """
    specs = workload.data_structures(dataset)
    sizes = [spec.size_bytes for spec in specs]
    hotness = []
    for spec in specs:
        try:
            hotness.append(float(
                profile.structure_by_name(spec.name).accesses
            ))
        except Exception:
            # Structures absent from the training profile (data
            # dependent allocations) fall back to neutral hotness.
            hotness.append(0.0)
    hints = get_allocation(sizes, hotness, tables, bo_capacity_bytes)
    return {spec.name: hint for spec, hint in zip(specs, hints)}
