"""The `repro bench` perf harness: measure the vectorized hot paths.

Three benches, each timing the vectorized implementation next to the
per-access reference loop it replaced
(:mod:`repro.gpu._reference`), on the same inputs the real pipeline
produces (raw SM streams, post-cache traces, BW-AWARE zone maps):

* ``filter`` — :meth:`CacheHierarchy.filter_stream_indices` vs the
  OrderedDict replay (and asserts the miss-index streams are
  bit-identical while at it);
* ``detailed`` / ``banked`` — the engines' ``run`` vs the seed heap
  loops (asserting ``total_time_ns`` agrees to 1e-9 relative);
* ``cold_run`` — wall time of ``run_experiment("bfs",
  policy="BW-AWARE", engine="detailed")`` in a fresh interpreter, the
  end-to-end number a user feels.

Every timing is a best-of-``repeats`` minimum: on a busy machine the
minimum is the estimate least polluted by scheduling noise.  Reports
serialize to ``BENCH_<rev>.json``; :func:`check_regression` compares
the *new*-side timings of two reports so CI can fail on real
slowdowns (the reference side only documents the speedup).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.experiment import resolve_policy
from repro.gpu._reference import (
    ReferenceCacheHierarchy,
    reference_banked_run,
    reference_detailed_run,
)
from repro.gpu.banked import BankedEngine
from repro.gpu.cache import CacheHierarchy
from repro.gpu.config import table1_config
from repro.gpu.engine import DetailedEngine
from repro.memory.topology import simulated_baseline
from repro.vm.process import Process
from repro.workloads import get_workload
from repro.workloads.base import (
    BASELINE_CHANNELS,
    DEFAULT_RAW_ACCESSES,
    FOOTPRINT_SCALE,
)

#: bench matrix: the Section 3 study workloads spanning the trace
#: regimes (graph, streaming, random, mixed) plus the one low-MLP
#: workload (sgemm, parallelism 20) that exercises the sequential
#: fallback of the batched kernel.
BENCH_WORKLOADS = ("bfs", "kmeans", "xsbench", "mummergpu", "sgemm")

#: quick (CI smoke) settings: one workload, short trace, one repeat.
QUICK_WORKLOADS = ("bfs",)
QUICK_RAW_ACCESSES = 60_000

SCHEMA_VERSION = 1


@dataclass
class BenchCase:
    """One timed comparison (vectorized vs reference)."""

    bench: str
    workload: str
    new_ms: float
    old_ms: Optional[float] = None
    speedup: Optional[float] = None
    match: Optional[bool] = None


@dataclass
class BenchReport:
    """A full harness run, serializable to ``BENCH_<rev>.json``."""

    rev: str
    created_unix: float
    quick: bool
    n_accesses: int
    repeats: int
    python: str
    numpy: str
    cases: list[BenchCase] = field(default_factory=list)
    summary: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"schema": SCHEMA_VERSION, **asdict(self)}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        payload = json.loads(text)
        payload.pop("schema", None)
        cases = [BenchCase(**case) for case in payload.pop("cases", [])]
        return cls(cases=cases, **payload)

    def case(self, bench: str, workload: str) -> Optional[BenchCase]:
        for case in self.cases:
            if case.bench == bench and case.workload == workload:
                return case
        return None


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:  # pragma: no cover - git missing
        pass
    return "unknown"


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs, in ms."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _geomean(values: list[float]) -> float:
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


def _bwaware_zone_map(workload, dataset, topology, seed):
    """The zone map ``run_experiment`` would hand the engine."""
    process = Process(topology, seed=seed)
    policy, hints = resolve_policy("BW-AWARE", workload, dataset, None,
                                   seed, topology, process)
    workload.reserve_in(process, dataset, hints=hints)
    return process.place_all(policy)


def _bench_filter(name: str, n_accesses: int, repeats: int,
                  seed: int) -> BenchCase:
    workload = get_workload(name)
    raw = workload.raw_line_trace("default", n_accesses=n_accesses,
                                  seed=seed)
    config = table1_config().scaled_caches(FOOTPRINT_SCALE)

    result: dict[str, np.ndarray] = {}

    def run_new() -> None:
        hierarchy = CacheHierarchy(config, BASELINE_CHANNELS)
        result["new"] = hierarchy.filter_stream_indices(raw)

    def run_old() -> None:
        hierarchy = ReferenceCacheHierarchy(config, BASELINE_CHANNELS)
        result["old"] = hierarchy.filter_stream_indices(raw)

    new_ms = _best_of(run_new, repeats)
    old_ms = _best_of(run_old, repeats)
    return BenchCase(
        bench="filter", workload=name, new_ms=new_ms, old_ms=old_ms,
        speedup=old_ms / new_ms,
        match=bool(np.array_equal(result["new"], result["old"])),
    )


def _bench_engine(engine_name: str, name: str, n_accesses: int,
                  repeats: int, seed: int) -> BenchCase:
    workload = get_workload(name)
    topology = simulated_baseline()
    config = table1_config()
    trace = workload.dram_trace("default", n_accesses=n_accesses,
                                seed=seed)
    chars = workload.characteristics("default")
    zone_map = _bwaware_zone_map(workload, "default", topology, seed)

    if engine_name == "detailed":
        engine = DetailedEngine(config)
        reference = reference_detailed_run
    else:
        engine = BankedEngine(config)
        reference = reference_banked_run

    result: dict[str, float] = {}

    def run_new() -> None:
        result["new"] = engine.run(trace, zone_map, topology,
                                   chars).total_time_ns

    def run_old() -> None:
        result["old"] = reference(config, trace, zone_map, topology,
                                  chars).total_time_ns

    new_ms = _best_of(run_new, repeats)
    old_ms = _best_of(run_old, repeats)
    relative = (abs(result["new"] - result["old"])
                / max(abs(result["old"]), 1e-300))
    return BenchCase(
        bench=engine_name, workload=name, new_ms=new_ms, old_ms=old_ms,
        speedup=old_ms / new_ms, match=bool(relative <= 1e-9),
    )


#: runner_overhead timings below this floor are reported as the floor:
#: sub-half-millisecond per-chunk numbers on a shared box are scheduler
#: noise, and gating a 3x regression ratio on noise causes flaky CI.
OVERHEAD_FLOOR_MS = 0.5


def _bench_runner_overhead(n_accesses: int, repeats: int,
                           seed: int) -> BenchCase:
    """Per-chunk orchestration overhead of the sweep runner.

    Times a 12-point BW-AWARE ratio sweep (one shared ``bfs`` trace)
    through the parallel runner twice — legacy pickle transport
    (``shm=False``) vs the zero-copy substrate (``shm=True``) — then
    subtracts the pure compute (every spec executed in-process with
    all trace memos warm, identical work in both modes) and divides by
    the chunk count.  What remains is exactly what the substrate
    targets: submit/decode framing, result IPC, and per-worker trace
    re-synthesis.

    Fairness protocol: each timed repeat clears the parent trace memo,
    then runs a small warm-up sweep (a *different* trace key) so all
    workers are forked **before** the bench trace exists anywhere —
    otherwise fork copy-on-write hands workers the parent's memo and
    the legacy mode never pays the re-synthesis it pays in real
    daemon-style use.  ``match`` asserts both modes returned results
    bit-identical to a serial run.
    """
    from repro.runner import (
        SweepRunner,
        bw_ratio_policy,
        encode_result,
        execute_spec,
        make_spec,
    )
    from repro.workloads.base import clear_trace_cache

    # Pool forking + process scheduling make this the noisiest bench
    # in the harness, and the legacy mode is bimodal: the executor's
    # shared call queue lets one fast worker steal several chunks, so
    # its best case pays fewer per-worker re-syntheses than its
    # typical case.  A best-of minimum would compare legacy's lucky
    # mode against shm's steady state — use the median of ≥5 samples
    # for both modes instead.
    repeats = max(repeats, 5)
    jobs = 4
    specs = [make_spec("bfs", bw_ratio_policy(co),
                       trace_accesses=n_accesses, seed=seed)
             for co in range(5, 65, 5)]
    warmup = [make_spec("bfs", bw_ratio_policy(co),
                        trace_accesses=max(2_000, n_accesses // 16),
                        seed=seed + 1)
              for co in (10, 20, 30, 40)]
    n_chunks = min(jobs, len(specs))

    golden = [encode_result(r)
              for r in SweepRunner(jobs=1, cache=False).run(specs)]

    def measure(shm: bool) -> tuple[float, list]:
        samples, encoded = [], []
        for _ in range(max(1, repeats)):
            clear_trace_cache()
            runner = SweepRunner(jobs=jobs, cache=False, shm=shm)
            try:
                runner.run(warmup)
                t0 = time.perf_counter()
                outcome = runner.run(specs)
                samples.append(time.perf_counter() - t0)
            finally:
                runner.close()
            encoded = [encode_result(r) for r in outcome]
        return float(np.median(samples)) * 1e3, encoded

    legacy_ms, legacy_enc = measure(shm=False)
    shm_ms, shm_enc = measure(shm=True)

    def pure_run() -> None:
        for spec in specs:
            execute_spec(spec)

    clear_trace_cache()
    pure_run()  # synthesize once; timed loops below hit warm memos
    pure_ms = _best_of(pure_run, repeats)

    old_ms = max((legacy_ms - pure_ms) / n_chunks, OVERHEAD_FLOOR_MS)
    new_ms = max((shm_ms - pure_ms) / n_chunks, OVERHEAD_FLOOR_MS)
    return BenchCase(
        bench="runner_overhead", workload="bfs",
        new_ms=new_ms, old_ms=old_ms, speedup=old_ms / new_ms,
        match=bool(golden == legacy_enc == shm_enc),
    )


def _bench_cold_run(repeats: int) -> BenchCase:
    """End-to-end ``run_experiment`` in a fresh interpreter: every
    trace/result memo is cold, so trace synthesis, cache filtering,
    placement and the engine all run for real.  The subprocess
    self-times the experiment only — interpreter startup and module
    imports are constant overhead that no amount of simulation work
    can amortize, so they stay out of the measurement."""
    code = (
        "from repro.core.experiment import run_experiment\n"
        "import time; t0 = time.perf_counter()\n"
        "run_experiment('bfs', policy='BW-AWARE', engine='detailed')\n"
        "print((time.perf_counter() - t0) * 1e3)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    best = float("inf")
    for _ in range(max(1, repeats)):
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, env=env,
                             timeout=600)
        if out.returncode != 0:  # pragma: no cover - child crash
            raise RuntimeError(f"cold run failed: {out.stderr}")
        best = min(best, float(out.stdout.strip().splitlines()[-1]))
    return BenchCase(bench="cold_run", workload="bfs", new_ms=best)


def run_bench(quick: bool = False, repeats: Optional[int] = None,
              n_accesses: Optional[int] = None, seed: int = 0,
              workloads: Optional[tuple[str, ...]] = None,
              skip_cold: bool = False, skip_runner: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> BenchReport:
    """Run the full harness and return the report."""
    if workloads is None:
        workloads = QUICK_WORKLOADS if quick else BENCH_WORKLOADS
    if repeats is None:
        repeats = 1 if quick else 3
    if n_accesses is None:
        n_accesses = QUICK_RAW_ACCESSES if quick else DEFAULT_RAW_ACCESSES

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = BenchReport(
        rev=_git_rev(), created_unix=time.time(), quick=quick,
        n_accesses=n_accesses, repeats=repeats,
        python=sys.version.split()[0], numpy=np.__version__,
    )
    for name in workloads:
        note(f"filter   {name}")
        report.cases.append(_bench_filter(name, n_accesses, repeats,
                                          seed))
        for engine_name in ("detailed", "banked"):
            note(f"{engine_name:8s} {name}")
            report.cases.append(_bench_engine(engine_name, name,
                                              n_accesses, repeats,
                                              seed))
    if not skip_runner:
        note("runner_overhead bfs")
        report.cases.append(_bench_runner_overhead(n_accesses, repeats,
                                                   seed))
    if not skip_cold:
        note("cold_run bfs")
        report.cases.append(_bench_cold_run(repeats))

    for bench in ("filter", "detailed", "banked"):
        speedups = [case.speedup for case in report.cases
                    if case.bench == bench and case.speedup]
        if speedups:
            report.summary[f"{bench}_speedup_geomean"] = _geomean(
                speedups)
    cold = report.case("cold_run", "bfs")
    if cold is not None:
        report.summary["cold_run_ms"] = cold.new_ms
    overhead = report.case("runner_overhead", "bfs")
    if overhead is not None:
        report.summary["runner_overhead_ms_per_chunk"] = overhead.new_ms
        if overhead.speedup:
            report.summary["runner_overhead_speedup"] = overhead.speedup
    report.summary["all_match"] = float(all(
        case.match for case in report.cases if case.match is not None
    ))
    return report


def check_regression(current: BenchReport, baseline: BenchReport,
                     max_ratio: float = 3.0) -> list[str]:
    """New-side slowdowns of ``current`` vs ``baseline`` beyond
    ``max_ratio``; empty means pass.  Only cases present in both
    reports are compared, so shrinking or growing the matrix never
    trips the check by itself.
    """
    failures = []
    for case in current.cases:
        base = baseline.case(case.bench, case.workload)
        if base is None or base.new_ms <= 0:
            continue
        ratio = case.new_ms / base.new_ms
        if ratio > max_ratio:
            failures.append(
                f"{case.bench}/{case.workload}: {case.new_ms:.1f} ms "
                f"vs baseline {base.new_ms:.1f} ms "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
    for case in current.cases:
        if case.match is False:
            failures.append(
                f"{case.bench}/{case.workload}: vectorized result "
                "diverged from the reference"
            )
    return failures
