"""Performance measurement: the `repro bench` harness.

The vectorized hot paths (:mod:`repro.gpu.cache`, :mod:`repro.gpu.lru`,
:mod:`repro.gpu.service`) are justified by measured speedups over the
reference loops in :mod:`repro.gpu._reference`; this package owns the
harness that produces (and regression-checks) those measurements.
"""

from repro.perf.bench import (
    BenchReport,
    check_regression,
    run_bench,
)

__all__ = [
    "BenchReport",
    "check_regression",
    "run_bench",
]
