"""Kernel execution: IR -> coalesced line-address stream.

Executes kernels warp by warp, the way a GPU's memory pipeline sees
them: for each warp, the refs issue in program order, each producing up
to 32 lane addresses that the coalescer merges into unique 128-byte
line transactions.  Affine (``ThreadIndex``) refs therefore coalesce to
one or two lines per warp while gathers fan out to a line per lane —
the first-order behaviour separating streaming from irregular kernels.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.units import LINE_SIZE, PAGE_SIZE
from repro.kernelsim.ir import ArrayDecl, Kernel

#: lanes per warp (matches GpuConfig.warp_size).
WARP_SIZE = 32


@dataclass(frozen=True)
class ArrayLayout:
    """Where one array lives in the program footprint."""

    decl: ArrayDecl
    first_page: int

    @property
    def first_line(self) -> int:
        return self.first_page * (PAGE_SIZE // LINE_SIZE)

    def page_range(self) -> range:
        return range(self.first_page, self.first_page + self.decl.n_pages)


#: supported warp-issue schedules.
SCHEDULES = ("round-robin", "warp-major")


class KernelExecutor:
    """Lays out arrays and executes kernels into a line trace.

    ``schedule`` models the SM warp scheduler's issue order between
    resident warps:

    * ``"round-robin"`` (default) — warps advance in lockstep: every
      warp issues its first ref, then every warp its second, and so on.
      This is the steady state of a greedy-then-oldest scheduler over
      homogeneous warps and gives the temporal structure-mixing real
      kernels exhibit.
    * ``"warp-major"`` — each warp runs to completion before the next
      starts; the degenerate single-resident-warp case, useful to show
      how much scheduling-driven interleaving matters.
    """

    def __init__(self, arrays: Sequence[ArrayDecl], seed: int = 0,
                 schedule: str = "round-robin") -> None:
        if not arrays:
            raise WorkloadError("executor needs at least one array")
        names = [array.name for array in arrays]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate array names in {names}")
        if schedule not in SCHEDULES:
            raise WorkloadError(
                f"unknown schedule {schedule!r}; known: {SCHEDULES}"
            )
        self._layouts: dict[str, ArrayLayout] = {}
        page = 0
        for array in arrays:
            self._layouts[array.name] = ArrayLayout(array, page)
            page += array.n_pages
        self.footprint_pages = page
        self._seed = seed
        self.schedule = schedule

    def layout(self, name: str) -> ArrayLayout:
        try:
            return self._layouts[name]
        except KeyError:
            raise WorkloadError(f"kernel references undeclared array "
                                f"{name!r}")

    def _rng(self, kernel: Kernel, launch: int) -> np.random.Generator:
        key = f"{kernel.name}/{launch}/{self._seed}".encode()
        return np.random.default_rng(zlib.crc32(key))

    def line_trace(self, kernels: Sequence[Kernel]) -> np.ndarray:
        """Coalesced global line-address stream for a kernel sequence."""
        return self.access_stream(kernels)[0]

    def access_stream(self, kernels: Sequence[Kernel]
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Coalesced (line addresses, is_write flags) for the sequence."""
        pieces: list[np.ndarray] = []
        flag_pieces: list[np.ndarray] = []
        for kernel in kernels:
            for launch in range(kernel.launches):
                lines, flags = self._run_once(kernel, launch)
                pieces.append(lines)
                flag_pieces.append(flags)
        if not pieces:
            raise WorkloadError("no kernels to execute")
        return np.concatenate(pieces), np.concatenate(flag_pieces)

    def _run_once(self, kernel: Kernel, launch: int
                  ) -> tuple[np.ndarray, np.ndarray]:
        rng = self._rng(kernel, launch)
        thread_ids = np.arange(kernel.n_threads, dtype=np.int64)
        n_warps = -(-kernel.n_threads // WARP_SIZE)

        # lines[r]: line address per thread for ref r.
        per_ref_lines = []
        for ref in kernel.refs:
            layout = self.layout(ref.array)
            decl = layout.decl
            element = ref.index.evaluate(thread_ids, decl.n_elements, rng)
            if element.size and (element.min() < 0
                                 or element.max() >= decl.n_elements):
                raise WorkloadError(
                    f"{kernel.name}: index for {ref.array!r} out of range"
                )
            byte = element * decl.element_bytes
            per_ref_lines.append(layout.first_line + byte // LINE_SIZE)

        # Per-warp coalescing: unique lines per (warp, ref) transaction,
        # issued in the scheduler's order.
        out: list[np.ndarray] = []
        out_flags: list[np.ndarray] = []

        def emit(warp: int, ref_index: int) -> None:
            lo = warp * WARP_SIZE
            hi = min(lo + WARP_SIZE, kernel.n_threads)
            ref = kernel.refs[ref_index]
            unique = np.unique(per_ref_lines[ref_index][lo:hi])
            out.append(unique)
            out_flags.append(
                np.full(unique.size, ref.is_store, dtype=bool)
            )

        if self.schedule == "round-robin":
            for ref_index in range(len(kernel.refs)):
                for warp in range(n_warps):
                    emit(warp, ref_index)
        else:  # warp-major
            for warp in range(n_warps):
                for ref_index in range(len(kernel.refs)):
                    emit(warp, ref_index)
        return np.concatenate(out), np.concatenate(out_flags)

    def access_counts_per_array(self, kernels: Sequence[Kernel]
                                ) -> dict[str, int]:
        """Executed (pre-coalescing) loads+stores per array.

        This is exactly what the paper's inserted instrumentation
        counts: every executed memory operation increments the counter
        of the array whose address range it falls in.
        """
        counts = {name: 0 for name in self._layouts}
        for kernel in kernels:
            for ref in kernel.refs:
                counts[self.layout(ref.array).decl.name] += (
                    kernel.n_threads * kernel.launches
                )
        return counts
