"""Reference programs written in the kernel IR.

Two of the paper's workload archetypes expressed as explicit kernels —
used by tests and the kernel-IR example, and serving as templates for
user-defined programs.
"""

from __future__ import annotations

from repro.kernelsim.ir import (
    ArrayDecl,
    BlockIndex,
    IndirectIndex,
    Kernel,
    MemoryRef,
    ThreadIndex,
    UniformIndex,
    ZipfIndex,
)
from repro.kernelsim.workload import KernelWorkload


def spmv_program(dataset: str = "default"):
    """CSR sparse matrix-vector multiply, one thread per non-zero.

    ``y[row[i]] += val[i] * x[col[i]]`` — streaming loads of the CSR
    arrays, indirect power-law gather of ``x``, indirect scatter of
    ``y``.
    """
    scale = {"default": 1, "large": 2}[dataset]
    nnz = 65_536 * scale
    n_rows = 8_192 * scale
    arrays = (
        ArrayDecl("csr_values", nnz, element_bytes=8),
        ArrayDecl("csr_cols", nnz, element_bytes=4),
        ArrayDecl("x_vec", n_rows, element_bytes=8),
        ArrayDecl("y_vec", n_rows, element_bytes=8),
    )
    kernels = (
        Kernel(
            name="spmv",
            n_threads=nnz,
            launches=2,
            refs=(
                MemoryRef("csr_values", ThreadIndex()),
                MemoryRef("csr_cols", ThreadIndex()),
                MemoryRef("x_vec", IndirectIndex(ZipfIndex(alpha=1.0),
                                                 salt=7)),
                MemoryRef("y_vec", IndirectIndex(ThreadIndex(), salt=13),
                          is_store=True),
            ),
        ),
    )
    return arrays, kernels


def histogram_program(dataset: str = "default"):
    """Streaming input, random scatter into a small hot bin table."""
    scale = {"default": 1, "wide": 4}[dataset]
    n_samples = 131_072
    n_bins = 2_048 * scale
    arrays = (
        ArrayDecl("samples", n_samples, element_bytes=4),
        ArrayDecl("bins", n_bins, element_bytes=4),
        ArrayDecl("block_offsets", 1_024, element_bytes=4),
    )
    kernels = (
        Kernel(
            name="histogram",
            n_threads=n_samples,
            refs=(
                MemoryRef("samples", ThreadIndex()),
                MemoryRef("block_offsets", BlockIndex(block=256)),
                MemoryRef("bins", UniformIndex(), is_store=True),
            ),
        ),
    )
    return arrays, kernels


def spmv_workload() -> KernelWorkload:
    """SpMV as a drop-in TraceWorkload."""
    return KernelWorkload(
        name="spmv-ir",
        builder=spmv_program,
        datasets=("default", "large"),
        parallelism=384.0,
        compute_ns_per_access=0.08,
        description="CSR SpMV written in kernel IR",
    )


def histogram_workload() -> KernelWorkload:
    """Histogram as a drop-in TraceWorkload."""
    return KernelWorkload(
        name="histogram-ir",
        builder=histogram_program,
        datasets=("default", "wide"),
        parallelism=416.0,
        compute_ns_per_access=0.05,
        description="binned histogram written in kernel IR",
    )
