"""Kernel intermediate representation.

Section 5.1's profiler instruments "all loads and stores" emitted by
nvcc/ptxas.  We cannot run SASS, so this package provides the smallest
program representation that still *has* loads and stores to instrument:
a kernel is a grid of threads, each executing a fixed sequence of
:class:`MemoryRef` s whose element indices are index expressions over
the global thread id — affine accesses for streaming kernels, random
and power-law gathers for data-dependent ones, and indirection
(``A[B[i]]``) for the index-driven patterns of SpMV/BFS.

Programs written in this IR flow through the *same* downstream stack as
the statistical workload models: the executor emits a line-address
stream, the instrumentation pass counts per-array accesses exactly as
the paper's compiler flag does, and the adapter exposes it all as a
:class:`repro.workloads.base.TraceWorkload`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.units import PAGE_SIZE

#: Knuth multiplicative hash constant for synthetic indirection targets.
_HASH_MULTIPLIER = 2654435761


@dataclass(frozen=True)
class ArrayDecl:
    """One device array (one ``cudaMalloc`` in the modeled program)."""

    name: str
    n_elements: int
    element_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise WorkloadError(f"{self.name}: n_elements must be > 0")
        if self.element_bytes <= 0:
            raise WorkloadError(f"{self.name}: element_bytes must be > 0")

    @property
    def size_bytes(self) -> int:
        return self.n_elements * self.element_bytes

    @property
    def n_pages(self) -> int:
        return -(-self.size_bytes // PAGE_SIZE)


class IndexExpr(abc.ABC):
    """Maps global thread ids to element indices within one array."""

    @abc.abstractmethod
    def evaluate(self, thread_ids: np.ndarray, n_elements: int,
                 rng: np.random.Generator) -> np.ndarray:
        """Element index per thread, each in ``[0, n_elements)``."""


@dataclass(frozen=True)
class ThreadIndex(IndexExpr):
    """Affine in the thread id: ``(coeff * tid + offset) % n``.

    ``coeff=1`` is the canonical coalesced streaming access.
    """

    coeff: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.coeff == 0:
            raise WorkloadError("coeff must be non-zero")

    def evaluate(self, thread_ids, n_elements, rng):
        return (self.coeff * thread_ids.astype(np.int64)
                + self.offset) % n_elements


@dataclass(frozen=True)
class BlockIndex(IndexExpr):
    """Block-shared index: ``(tid // block) % n`` — every thread of a
    block touches the same element (broadcast loads of per-block
    state)."""

    block: int = 256

    def __post_init__(self) -> None:
        if self.block <= 0:
            raise WorkloadError("block must be positive")

    def evaluate(self, thread_ids, n_elements, rng):
        return (thread_ids.astype(np.int64) // self.block) % n_elements


@dataclass(frozen=True)
class UniformIndex(IndexExpr):
    """Uniform random gather (hash tables, random sampling)."""

    def evaluate(self, thread_ids, n_elements, rng):
        return rng.integers(0, n_elements, size=thread_ids.size,
                            dtype=np.int64)


@dataclass(frozen=True)
class ZipfIndex(IndexExpr):
    """Power-law gather: a few elements dominate (rank tables, roots).

    Hot ranks are scattered through the array by a fixed permutation,
    as in :func:`repro.workloads.patterns.zipf`.
    """

    alpha: float = 1.1

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise WorkloadError("alpha must be positive")

    def evaluate(self, thread_ids, n_elements, rng):
        weights = 1.0 / np.power(
            np.arange(1, n_elements + 1, dtype=np.float64), self.alpha
        )
        weights /= weights.sum()
        ranks = rng.choice(n_elements, size=thread_ids.size, p=weights)
        permutation = rng.permutation(n_elements)
        return permutation[ranks].astype(np.int64)


@dataclass(frozen=True)
class IndirectIndex(IndexExpr):
    """Data-dependent indirection: ``target[ inner_value ]``.

    The modeled program reads an index array and uses its *contents* to
    address this array (``y[col[i]]``).  Array contents do not exist in
    a trace simulator, so the executor synthesizes them with a fixed
    multiplicative hash of the inner index — deterministic, scattered,
    and distinct per ``salt``.
    """

    inner: IndexExpr
    salt: int = 0

    def evaluate(self, thread_ids, n_elements, rng):
        inner_idx = self.inner.evaluate(thread_ids, n_elements, rng)
        hashed = (inner_idx * _HASH_MULTIPLIER + self.salt) & 0x7FFFFFFF
        return hashed % n_elements


@dataclass(frozen=True)
class MemoryRef:
    """One static load or store in the kernel body."""

    array: str
    index: IndexExpr
    is_store: bool = False


@dataclass(frozen=True)
class Kernel:
    """A grid launch: every thread executes ``refs`` in order."""

    name: str
    refs: tuple[MemoryRef, ...]
    n_threads: int
    #: back-to-back launches of this kernel (outer iterations).
    launches: int = 1

    def __post_init__(self) -> None:
        if not self.refs:
            raise WorkloadError(f"kernel {self.name}: no memory refs")
        if self.n_threads <= 0:
            raise WorkloadError(f"kernel {self.name}: n_threads must be > 0")
        if self.launches <= 0:
            raise WorkloadError(f"kernel {self.name}: launches must be > 0")

    def arrays_referenced(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for ref in self.refs:
            seen.setdefault(ref.array, None)
        return tuple(seen)
