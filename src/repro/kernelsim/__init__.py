"""Kernel IR, executor, and instrumentation (Section 5.1 substrate)."""

from repro.kernelsim.executor import (
    SCHEDULES,
    WARP_SIZE,
    ArrayLayout,
    KernelExecutor,
)
from repro.kernelsim.instrument import (
    ArrayProfile,
    ProgramProfile,
    profile_program,
)
from repro.kernelsim.ir import (
    ArrayDecl,
    BlockIndex,
    IndexExpr,
    IndirectIndex,
    Kernel,
    MemoryRef,
    ThreadIndex,
    UniformIndex,
    ZipfIndex,
)
from repro.kernelsim.programs import (
    histogram_program,
    histogram_workload,
    spmv_program,
    spmv_workload,
)
from repro.kernelsim.workload import KernelWorkload

__all__ = [
    "SCHEDULES",
    "WARP_SIZE",
    "ArrayLayout",
    "KernelExecutor",
    "ArrayProfile",
    "ProgramProfile",
    "profile_program",
    "ArrayDecl",
    "BlockIndex",
    "IndexExpr",
    "IndirectIndex",
    "Kernel",
    "MemoryRef",
    "ThreadIndex",
    "UniformIndex",
    "ZipfIndex",
    "histogram_program",
    "histogram_workload",
    "spmv_program",
    "spmv_workload",
    "KernelWorkload",
]
