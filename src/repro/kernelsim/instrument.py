"""The Section 5.1 profiling pass over kernel-IR programs.

Mirrors the paper's gprof-like flow: "the developer enables a special
compiler flag that instruments an application ... runs the instrumented
application on a set of representative workloads, which aggregates and
dumps a profile."  Here the "compiler flag" is calling
:func:`profile_program`: it associates each array with its address
range (the host-side ``cudaMalloc`` tracking), counts every executed
load/store against the range it falls in (the device-side
instrumentation), and renders the report programmers read to write
their hotness annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import WorkloadError
from repro.core.units import PAGE_SIZE, format_bytes
from repro.kernelsim.executor import KernelExecutor
from repro.kernelsim.ir import ArrayDecl, Kernel


@dataclass(frozen=True)
class ArrayProfile:
    """Aggregated instrumentation counters for one array."""

    name: str
    size_bytes: int
    loads: int
    stores: int

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def hotness_density(self) -> float:
        """Accesses per page — the annotation ranking key."""
        pages = max(1, -(-self.size_bytes // PAGE_SIZE))
        return self.accesses / pages


@dataclass(frozen=True)
class ProgramProfile:
    """The dumped profile of one instrumented run."""

    arrays: tuple[ArrayProfile, ...]

    @property
    def total_accesses(self) -> int:
        return sum(array.accesses for array in self.arrays)

    def ranking(self) -> tuple[ArrayProfile, ...]:
        """Hottest-per-page first, the order annotations follow."""
        return tuple(sorted(self.arrays,
                            key=lambda a: -a.hotness_density))

    def hotness_arrays(self) -> tuple[list[int], list[float]]:
        """The Figure 9 ``size[]`` and ``hotness[]`` arrays, in
        allocation order."""
        sizes = [array.size_bytes for array in self.arrays]
        hotness = [float(array.accesses) for array in self.arrays]
        return sizes, hotness

    def render(self) -> str:
        lines = [f"{'array':>20} {'size':>10} {'loads':>10} "
                 f"{'stores':>10} {'acc/page':>10}"]
        lines.append("-" * len(lines[0]))
        for array in self.ranking():
            lines.append(
                f"{array.name:>20} {format_bytes(array.size_bytes):>10} "
                f"{array.loads:>10} {array.stores:>10} "
                f"{array.hotness_density:>10.1f}"
            )
        return "\n".join(lines)


def profile_program(arrays: Sequence[ArrayDecl],
                    kernels: Sequence[Kernel]) -> ProgramProfile:
    """Run the instrumented program and aggregate its counters."""
    if not arrays:
        raise WorkloadError("nothing to profile: no arrays")
    executor = KernelExecutor(arrays)
    loads = {array.name: 0 for array in arrays}
    stores = {array.name: 0 for array in arrays}
    for kernel in kernels:
        weight = kernel.n_threads * kernel.launches
        for ref in kernel.refs:
            executor.layout(ref.array)  # validates the reference
            if ref.is_store:
                stores[ref.array] += weight
            else:
                loads[ref.array] += weight
    return ProgramProfile(tuple(
        ArrayProfile(
            name=array.name,
            size_bytes=array.size_bytes,
            loads=loads[array.name],
            stores=stores[array.name],
        )
        for array in arrays
    ))
