"""Adapter exposing kernel-IR programs as TraceWorkloads.

A :class:`KernelWorkload` plugs a program written in the kernel IR into
everything built for the statistical workload models: cache-filtered
trace synthesis, the profiler, CDF analytics, the placement policies,
the annotation runtime and the experiment harness.  The adapter derives
`DataStructureSpec`s from the array declarations and measures traffic
weights by instrumented execution, so `hotness_density` annotations
come from real (modeled) loads and stores rather than authored numbers.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.kernelsim.executor import KernelExecutor
from repro.kernelsim.ir import ArrayDecl, Kernel
from repro.workloads.base import DataStructureSpec, TraceWorkload

#: dataset name -> (arrays, kernels) program builder.
ProgramBuilder = Callable[[str], tuple[Sequence[ArrayDecl],
                                       Sequence[Kernel]]]


class KernelWorkload(TraceWorkload):
    """A TraceWorkload defined by kernel IR instead of patterns."""

    suite = "kernel-ir"
    #: datasets come from the program builder, never generic scaling.
    dataset_scales = {}

    def __init__(self, name: str, builder: ProgramBuilder,
                 datasets: Sequence[str] = ("default",),
                 parallelism: float = 384.0,
                 compute_ns_per_access: float = 0.1,
                 description: str = "") -> None:
        if not datasets:
            raise WorkloadError("need at least one dataset")
        self.name = name
        self.description = description or f"kernel-IR program {name}"
        self.parallelism = parallelism
        self.compute_ns_per_access = compute_ns_per_access
        self._builder = builder
        self._datasets = tuple(datasets)
        self._programs: dict[str, tuple[tuple[ArrayDecl, ...],
                                        tuple[Kernel, ...]]] = {}

    def datasets(self) -> tuple[str, ...]:
        return self._datasets

    def program(self, dataset: str = "default"
                ) -> tuple[tuple[ArrayDecl, ...], tuple[Kernel, ...]]:
        """The (arrays, kernels) program for a dataset (cached)."""
        self._check_dataset(dataset)
        if dataset not in self._programs:
            arrays, kernels = self._builder(dataset)
            arrays = tuple(arrays)
            kernels = tuple(kernels)
            if not arrays or not kernels:
                raise WorkloadError(
                    f"{self.name}/{dataset}: builder returned an empty "
                    "program"
                )
            declared = {array.name for array in arrays}
            for kernel in kernels:
                missing = set(kernel.arrays_referenced()) - declared
                if missing:
                    raise WorkloadError(
                        f"{self.name}/{dataset}: kernel {kernel.name} "
                        f"references undeclared arrays {sorted(missing)}"
                    )
            self._programs[dataset] = (arrays, kernels)
        return self._programs[dataset]

    def define_structures(self, dataset: str = "default"
                        ) -> tuple[DataStructureSpec, ...]:
        arrays, kernels = self.program(dataset)
        executor = KernelExecutor(arrays)
        counts = executor.access_counts_per_array(kernels)
        total = sum(counts.values())
        return tuple(
            DataStructureSpec(
                name=array.name,
                size_bytes=array.size_bytes,
                traffic_weight=100.0 * counts[array.name] / total,
                # Pattern metadata is unused: raw_line_trace is
                # overridden to execute the kernels directly.
                pattern="uniform",
                read_fraction=self._read_fraction(kernels, array.name),
            )
            for array in arrays
        )

    @staticmethod
    def _read_fraction(kernels: Sequence[Kernel], array: str) -> float:
        loads = stores = 0
        for kernel in kernels:
            for ref in kernel.refs:
                if ref.array != array:
                    continue
                weight = kernel.n_threads * kernel.launches
                if ref.is_store:
                    stores += weight
                else:
                    loads += weight
        total = loads + stores
        return loads / total if total else 1.0

    def raw_access_stream(self, dataset: str = "default",
                          n_accesses: int = 0, seed: int = 0):
        """Execute the program; ``n_accesses`` scales launch counts.

        The IR fixes the per-launch access count; when ``n_accesses``
        asks for a longer trace the whole kernel sequence is replayed
        (modeling outer timesteps) until the budget is met.  Write
        flags come from each ref's ``is_store``.
        """
        self._check_dataset(dataset)
        arrays, kernels = self.program(dataset)
        lines, flags = KernelExecutor(arrays,
                                      seed=seed).access_stream(kernels)
        if n_accesses and lines.size < n_accesses:
            line_parts, flag_parts = [lines], [flags]
            round_index = 1
            while sum(part.size for part in line_parts) < n_accesses:
                more_lines, more_flags = KernelExecutor(
                    arrays, seed=seed + round_index
                ).access_stream(kernels)
                line_parts.append(more_lines)
                flag_parts.append(more_flags)
                round_index += 1
            lines = np.concatenate(line_parts)
            flags = np.concatenate(flag_parts)
        if n_accesses:
            lines = lines[:n_accesses]
            flags = flags[:n_accesses]
        return lines, flags

    def footprint_pages(self, dataset: str = "default") -> int:
        arrays, _ = self.program(dataset)
        return KernelExecutor(arrays).footprint_pages
