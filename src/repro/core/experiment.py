"""The experiment runner: one workload, one placement policy, one system.

Every paper figure reduces to sweeps over this function:

1. synthesize (or fetch memoized) the workload's DRAM trace;
2. build the system — optionally shrinking the BO pool to a fraction of
   the workload footprint (the capacity-constraint studies);
3. reserve the program's allocations and place every page with the
   policy under test (two-phase policies get their profiling pass here);
4. replay the trace on the GPU simulator and report timing.

String policy names are resolved through the registry; ``"ORACLE"`` and
``"ANNOTATED"`` trigger the extra profiling pass they need (the paper's
two-phase simulation and compiler workflow respectively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from repro.core.errors import ConfigError
from repro.core.units import PAGE_SIZE
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import EngineName, GpuSystemSimulator
from repro.gpu.trace import SimResult
from repro.memory.topology import SystemTopology, simulated_baseline
from repro.policies.base import PlacementPolicy
from repro.policies.registry import make_policy
from repro.profiling.profiler import PageAccessProfiler
from repro.runtime.hints import hints_from_profile
from repro.vm.process import Process
from repro.workloads.base import TraceWorkload
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class ExperimentResult:
    """One (workload, policy, system) measurement."""

    workload: str
    dataset: str
    policy: str
    sim: SimResult
    zone_page_counts: tuple[int, ...]
    topology_name: str
    #: dynamic-placement accounting (pages moved, migration time, ...);
    #: ``None`` for static policies.
    migration: Optional[Mapping[str, object]] = None

    @property
    def time_ns(self) -> float:
        return self.sim.total_time_ns

    @property
    def throughput(self) -> float:
        """Inverse runtime; meaningful only as ratios between runs."""
        return self.sim.throughput

    def placement_fractions(self) -> tuple[float, ...]:
        """Fraction of footprint pages in each zone."""
        total = sum(self.zone_page_counts)
        return tuple(count / total for count in self.zone_page_counts)

    def describe(self) -> str:
        fractions = ", ".join(
            f"z{idx}={frac:.0%}"
            for idx, frac in enumerate(self.placement_fractions())
        )
        return (f"{self.workload}/{self.dataset} under {self.policy}: "
                f"{self.time_ns / 1e6:.3f} ms [{fractions}]")


def constrained_topology(base: SystemTopology, footprint_pages: int,
                         bo_capacity_fraction: Optional[float]
                         ) -> SystemTopology:
    """Shrink the GPU-local BO pool to a fraction of the footprint.

    The capacity-constraint experiments (Figures 4, 8, 10, 11) express
    BO capacity relative to the application footprint; ``None`` leaves
    the base topology untouched (footprint fits, the common case of
    Section 3).
    """
    if bo_capacity_fraction is None:
        return base
    if not 0.0 < bo_capacity_fraction:
        raise ConfigError("bo_capacity_fraction must be positive")
    pages = max(1, int(round(footprint_pages * bo_capacity_fraction)))
    return base.with_bo_capacity(pages * PAGE_SIZE)


def resolve_policy(policy: Union[str, PlacementPolicy],
                   workload: TraceWorkload, dataset: str,
                   trace_accesses: Optional[int], seed: int,
                   topology: SystemTopology,
                   process: Process,
                   training_dataset: Optional[str] = None
                   ) -> tuple[PlacementPolicy, Optional[Mapping[str, object]]]:
    """Build the policy object, running profiling passes where needed.

    Returns ``(policy, hints)``; ``hints`` is non-None only for
    annotated placement (it must be applied at reservation time).
    ``training_dataset`` lets the Figure 11 study train annotations on
    one dataset and run on another; profile-driven policies default to
    training on the dataset under test (the paper's Figure 10 setup).
    """
    if isinstance(policy, PlacementPolicy):
        return policy, None
    name = policy.upper()
    kwargs = {} if trace_accesses is None else {"n_accesses": trace_accesses}
    if name == "ORACLE":
        # Perfect knowledge is per-run: profile the dataset under test.
        trace = workload.dram_trace(dataset, seed=seed, **kwargs)
        return make_policy(
            "ORACLE", page_accesses=trace.page_access_counts()
        ), None
    if name == "ANNOTATED":
        train = training_dataset if training_dataset is not None else dataset
        profile = PageAccessProfiler().profile(
            workload, train, n_accesses=trace_accesses, seed=seed
        )
        bo_zone = topology.local
        hints = hints_from_profile(
            workload, profile, process.tables,
            bo_capacity_bytes=bo_zone.capacity_bytes, dataset=dataset,
        )
        return make_policy("ANNOTATED"), hints
    if name.partition("@")[0] == "ONLINE":
        from repro.policies.online import online_from_spec

        return online_from_spec(name), None
    return make_policy(name), None


def run_experiment(workload: Union[str, TraceWorkload],
                   dataset: str = "default",
                   policy: Union[str, PlacementPolicy] = "BW-AWARE",
                   topology: Optional[SystemTopology] = None,
                   bo_capacity_fraction: Optional[float] = None,
                   engine: EngineName = "throughput",
                   config: Optional[GpuConfig] = None,
                   trace_accesses: Optional[int] = None,
                   seed: int = 0,
                   training_dataset: Optional[str] = None
                   ) -> ExperimentResult:
    """Run one placement experiment end to end (see module docstring)."""
    if isinstance(workload, str):
        workload = get_workload(workload)
    base = topology if topology is not None else simulated_baseline()
    footprint = workload.footprint_pages(dataset)
    system = constrained_topology(base, footprint, bo_capacity_fraction)

    process = Process(system, seed=seed)
    resolved, hints = resolve_policy(
        policy, workload, dataset, trace_accesses, seed, system, process,
        training_dataset=training_dataset,
    )
    online = resolved if getattr(resolved, "dynamic", False) else None
    if online is not None:
        # ONLINE places with its *initial* static policy (resolved
        # through the same path, so ORACLE/ANNOTATED initials get their
        # profiling passes), then migrates at epoch boundaries.
        initial = online.initial
        if isinstance(initial, str):
            from repro.runner.spec import parse_policy

            initial = parse_policy(initial.upper())
        resolved, hints = resolve_policy(
            initial, workload, dataset, trace_accesses, seed, system,
            process, training_dataset=training_dataset,
        )
    workload.reserve_in(process, dataset, hints=hints)
    zone_map = process.place_all(resolved)

    kwargs = {} if trace_accesses is None else {"n_accesses": trace_accesses}
    migration = None
    if online is not None:
        trace = workload.dram_trace(dataset, seed=seed,
                                    n_epochs=online.epochs, **kwargs)
        sim, zone_map, migration = _simulate_online(
            online, system, config, engine, trace,
            workload.characteristics(dataset), zone_map,
        )
    else:
        trace = workload.dram_trace(dataset, seed=seed, **kwargs)
        simulator = GpuSystemSimulator(system, config, engine)
        sim = simulator.simulate(trace, zone_map,
                                 workload.characteristics(dataset))

    counts = np.bincount(zone_map, minlength=len(system))
    return ExperimentResult(
        workload=workload.name,
        dataset=dataset,
        policy=(policy if isinstance(policy, str)
                else (online or resolved).name),
        sim=sim,
        zone_page_counts=tuple(int(c) for c in counts),
        topology_name=system.name,
        migration=migration,
    )


def _simulate_online(online, system: SystemTopology,
                     config: Optional[GpuConfig], engine: EngineName,
                     trace, chars, zone_map: np.ndarray):
    """Replay the trace through the migration engine for ONLINE.

    The CO target is the largest non-BO pool (on the two-zone baseline
    simply "the other zone"); migration traffic is charged through the
    Section 5.5 cost model scaled by the policy's ``cost_scale``.
    """
    from repro.migration.cost import scaled_migration
    from repro.migration.engine import MigrationSimulator
    from repro.migration.policy import EpochMigrationPolicy

    bo_zone = system.gpu_local_zone
    # Largest non-BO pool; among equals, the one nearest the GPU by the
    # distance matrix (matters on chiplet systems where several remote
    # HBM stacks tie on capacity).
    distances = system.distances
    co_zone = max(
        (zone for zone in system.zones if zone.zone_id != bo_zone),
        key=lambda zone: (zone.capacity_bytes,
                          -distances.hops(bo_zone, zone.zone_id)),
    ).zone_id
    mig_policy = EpochMigrationPolicy(
        bo_zone=bo_zone,
        co_zone=co_zone,
        bo_capacity_pages=system.local.capacity_pages,
        bo_traffic_fraction=system.bandwidth_fractions()[bo_zone],
        budget_pages_per_epoch=online.budget_pages_per_epoch,
        hysteresis=online.hysteresis,
        watermarks=online.watermarks,
    )
    simulator = MigrationSimulator(
        system, config, scaled_migration(online.cost_scale), engine=engine
    )
    result = simulator.run(
        trace, zone_map, chars, mig_policy,
        tracker_decay=online.decay,
        oracle_scores=(trace.page_access_counts()
                       if online.oracle_hotness else None),
        plan_before_start=online.oracle_hotness,
        max_overhead=online.max_overhead,
    )
    migration = {
        "pages_migrated": int(result.pages_migrated),
        "migration_time_ns": float(result.migration_time_ns),
        "execution_time_ns": float(result.execution_time_ns),
        "moves_per_epoch": [int(n) for n in result.moves_per_epoch],
    }
    return result.sim, result.final_zone_map, migration


def compare_policies(workload: Union[str, TraceWorkload],
                     policies: tuple[Union[str, PlacementPolicy], ...],
                     **kwargs: object) -> dict[str, ExperimentResult]:
    """Run several policies on one workload with shared settings."""
    results = {}
    for policy in policies:
        result = run_experiment(workload, policy=policy, **kwargs)
        results[result.policy] = result
    return results
