"""Unit constants and conversion helpers used throughout the library.

The simulator mixes three unit families — bytes, seconds and GPU core
cycles — and bugs in unit handling are the classic failure mode of memory
system models.  Centralizing the constants (and the few conversions that
need a clock frequency) keeps every module honest.

Conventions
-----------
* Capacities and footprints are plain ``int`` bytes.
* Bandwidths are ``float`` **bytes per second** internally; the public API
  accepts and reports GB/s (decimal, :data:`GB` = 1e9) because that is the
  unit the paper uses ("200GB/sec aggregate").
* Latencies are ``float`` nanoseconds internally; the GPU config converts
  to/from core cycles at its clock frequency (1.4 GHz in Table 1).
"""

from __future__ import annotations

# Binary capacity units (page counts, cache sizes, footprints).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Decimal units (bandwidths, DRAM marketing numbers).
KB = 10**3
MB = 10**6
GB = 10**9

#: Page size used by every component (the paper profiles 4kB pages).
PAGE_SIZE = 4 * KIB

#: DRAM burst / cache line granularity in bytes (GPU sector size).
LINE_SIZE = 128

NS_PER_S = 1e9


def gbps(value: float) -> float:
    """Convert a bandwidth expressed in GB/s to bytes/second."""
    return float(value) * GB


def to_gbps(bytes_per_second: float) -> float:
    """Convert a bandwidth in bytes/second back to GB/s for reporting."""
    return bytes_per_second / GB


def bytes_to_pages(n_bytes: int) -> int:
    """Number of 4 KiB pages needed to back ``n_bytes`` (ceiling)."""
    if n_bytes < 0:
        raise ValueError(f"negative byte count: {n_bytes}")
    return -(-int(n_bytes) // PAGE_SIZE)


def pages_to_bytes(n_pages: int) -> int:
    """Total bytes spanned by ``n_pages`` full pages."""
    if n_pages < 0:
        raise ValueError(f"negative page count: {n_pages}")
    return int(n_pages) * PAGE_SIZE


def cycles_to_ns(cycles: float, clock_ghz: float) -> float:
    """Convert core cycles to nanoseconds at ``clock_ghz``."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return cycles / clock_ghz


def ns_to_cycles(ns: float, clock_ghz: float) -> float:
    """Convert nanoseconds to core cycles at ``clock_ghz``."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return ns * clock_ghz


def format_bytes(n_bytes: int) -> str:
    """Human readable byte count, binary units (``'12.0 MiB'``)."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")
