"""Shared cache-directory resolution.

Three layers persist results under the same root: the sweep runner's
on-disk :class:`~repro.runner.cache.ResultCache`, the CLI's
``--cache-dir`` flag, and the :mod:`repro.serve` daemon.  They must all
agree on where that root lives, or a warm CLI cache looks cold to the
daemon (and vice versa).  This module is the single resolution rule:

1. an explicit path always wins (``--cache-dir``, ``ServeConfig``),
2. else ``$REPRO_CACHE_DIR`` (ignoring pure whitespace),
3. else ``./.repro-cache`` in the current working directory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

#: environment variable naming the shared result-cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: directory used when caching is requested without a location.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def cache_root(explicit: Union[str, Path, None] = None) -> Path:
    """Resolve the result-cache root (explicit > env > default).

    Every component that opens a result cache — runner, CLI, serve —
    goes through this function, so ``$REPRO_CACHE_DIR`` means the same
    thing everywhere.
    """
    if explicit is not None:
        return Path(explicit).expanduser()
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.cwd() / DEFAULT_CACHE_DIRNAME


def describe_default() -> str:
    """Human-readable default for CLI ``--help`` strings."""
    return f"${CACHE_DIR_ENV} or ./{DEFAULT_CACHE_DIRNAME}"
