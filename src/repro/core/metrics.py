"""Aggregate metrics for experiment results.

The paper reports averages of per-workload performance ratios
(normalized to a baseline policy); geometric means are the standard
aggregation for ratios and what we use everywhere a figure quotes an
"average" improvement.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(test_time: float, baseline_time: float) -> float:
    """Baseline-relative speedup (>1 means the test config is faster)."""
    if test_time <= 0 or baseline_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / test_time


def percent_gain(ratio: float) -> float:
    """Ratio expressed as a percent improvement (1.18 -> 18.0)."""
    return (ratio - 1.0) * 100.0


def normalize(values: Mapping[str, float],
              baseline_key: str) -> dict[str, float]:
    """Scale a {label: throughput} mapping so the baseline is 1.0."""
    try:
        baseline = values[baseline_key]
    except KeyError:
        raise ValueError(f"baseline {baseline_key!r} not in {sorted(values)}")
    if baseline <= 0:
        raise ValueError("baseline value must be positive")
    return {key: value / baseline for key, value in values.items()}


def geomean_by_key(rows: Sequence[Mapping[str, float]]) -> dict[str, float]:
    """Column-wise geometric mean over rows sharing the same keys."""
    if not rows:
        raise ValueError("no rows to aggregate")
    keys = set(rows[0])
    for row in rows:
        if set(row) != keys:
            raise ValueError("rows have mismatched keys")
    return {key: geomean(row[key] for row in rows) for key in sorted(keys)}
