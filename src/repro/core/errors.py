"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object was constructed with inconsistent values."""


class OutOfMemoryError(ReproError):
    """No physical frame could satisfy an allocation request.

    Raised by the physical allocator when *every* zone in the fallback
    chain is exhausted, mirroring the kernel OOM condition.  Policies that
    merely prefer a full zone fall back silently instead of raising.
    """


class AllocationError(ReproError):
    """A virtual allocation request was malformed (zero size, bad hint...)."""


class TranslationError(ReproError):
    """A virtual address was dereferenced without a valid mapping."""


class PolicyError(ReproError):
    """A placement policy was misconfigured or used out of contract."""


class ProfileError(ReproError):
    """Profile data was missing, malformed, or inconsistent with a trace."""


class SimulationError(ReproError):
    """The GPU simulator reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload or dataset name could not be resolved, or a trace request
    was invalid for the given workload."""


class IngestError(WorkloadError):
    """An external trace file failed validation or exceeded a cap.

    Raised by :mod:`repro.ingest` for every rejection of untrusted
    input — malformed lines, unknown commands, resource-cap overruns,
    registry checksum mismatches.  Carries a line-precise location so
    error reports (CLI, HTTP 422 bodies, quarantine records) can point
    at the offending byte: ``file`` is the source label, ``line`` and
    ``column`` are 1-based (0 = not line-specific), ``reason`` the
    human-readable diagnosis.
    """

    def __init__(self, reason: str, file: str = "<bytes>",
                 line: int = 0, column: int = 0) -> None:
        location = file
        if line > 0:
            location += f":{line}"
            if column > 0:
                location += f":{column}"
        super().__init__(f"{location}: {reason}")
        self.reason = reason
        self.file = file
        self.line = line
        self.column = column

    def to_dict(self) -> dict:
        """JSON-able structure for HTTP error bodies and quarantine
        records."""
        return {
            "reason": self.reason,
            "file": self.file,
            "line": self.line,
            "column": self.column,
        }


class RunnerError(ReproError):
    """The sweep runner was misconfigured or a worker failed."""


class SweepError(RunnerError):
    """A sweep could not resolve every spec despite recovery.

    Raised by :class:`~repro.runner.sweep.SweepRunner` after retries,
    pool rebuilds, and the degraded serial fallback have all been
    exhausted (or a deadline expired).  ``failed_specs`` names the
    offending spec labels so the caller knows exactly what to exclude
    or investigate; ``causes`` carries one representative exception
    string per failed spec.
    """

    def __init__(self, message: str,
                 failed_specs: "tuple[str, ...] | list[str]" = (),
                 causes: "tuple[str, ...] | list[str]" = ()) -> None:
        super().__init__(message)
        self.failed_specs = tuple(failed_specs)
        self.causes = tuple(causes)


class CacheEncodingError(RunnerError):
    """A cache record contained a value JSON cannot represent exactly.

    Raised instead of silently stringifying unknown types (the old
    ``default=str`` behavior), which produced records that decoded to
    *different* values than were stored — a wrong-result bug, the one
    thing the cache is designed never to do.
    """


class UncacheableSpecError(RunnerError):
    """An experiment input cannot be canonicalized into a :class:`RunSpec`
    (e.g. a custom policy object with state the runner cannot serialize).

    Callers usually fall back to a direct, uncached
    :func:`repro.core.experiment.run_experiment` call.
    """


class ServeError(ReproError):
    """A placement-service request failed.

    Raised by :mod:`repro.serve.client` for non-2xx responses and by the
    daemon for malformed requests.  ``status`` carries the HTTP status
    code (0 for transport failures) and ``retry_after`` the server's
    backpressure hint in seconds, when one was given.
    """

    def __init__(self, message: str, status: int = 0,
                 retry_after: "float | None" = None,
                 payload: "dict | None" = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.payload = payload or {}
