"""Atomic file publication.

Every durable artifact in the repo — cache records, run manifests —
goes through :func:`atomic_write_text`: serialize to a uniquely named
temp file in the destination directory, flush + fsync, then
``os.replace`` onto the final path.  A reader can therefore never see
a half-written file, regardless of SIGKILL timing or concurrent
writers sharing the directory (pool workers, parallel CI shards).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str,
                      fsync: bool = True) -> Path:
    """Publish ``text`` at ``path`` atomically (create dirs as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent,
        prefix=f".{path.name[:16]}.", suffix=".tmp", delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: Any,
                      indent: "int | None" = None,
                      fsync: bool = True) -> Path:
    """JSON-serialize ``payload`` and publish it atomically."""
    text = json.dumps(payload, indent=indent, default=str)
    if indent is not None:
        text += "\n"
    return atomic_write_text(path, text, fsync=fsync)
