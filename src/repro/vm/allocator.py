"""Physical frame allocators.

:class:`ZoneAllocator` hands out frames from one NUMA zone;
:class:`PhysicalMemory` aggregates one allocator per zone of a topology
and implements the fallback chain semantics Linux uses: try the preferred
zones in order, and only raise :class:`OutOfMemoryError` once *every*
zone is exhausted.  This fallback is load-bearing for the paper's
capacity-constraint experiments — when the BO pool fills, placement
policies silently spill to the CO pool exactly as ``mbind`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import ConfigError, OutOfMemoryError
from repro.memory.topology import SystemTopology
from repro.vm.page import PageMapping


class ZoneAllocator:
    """Frame allocator for a single zone.

    Frames are integers in ``[0, capacity_pages)``.  A simple bump
    pointer plus an explicit free list is enough: the simulator never
    cares about physical frame adjacency, only about which *zone* backs
    each page.
    """

    def __init__(self, zone_id: int, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ConfigError("capacity_pages must be positive")
        self.zone_id = zone_id
        self.capacity_pages = capacity_pages
        self._next_frame = 0
        self._free_list: list[int] = []

    @property
    def used_pages(self) -> int:
        """Frames currently handed out."""
        return self._next_frame - len(self._free_list)

    @property
    def free_pages(self) -> int:
        """Frames still available."""
        return self.capacity_pages - self.used_pages

    @property
    def full(self) -> bool:
        return self.free_pages == 0

    def allocate(self) -> int:
        """Take one frame; raises :class:`OutOfMemoryError` when full."""
        if self._free_list:
            return self._free_list.pop()
        if self._next_frame >= self.capacity_pages:
            raise OutOfMemoryError(
                f"zone {self.zone_id} exhausted "
                f"({self.capacity_pages} pages)"
            )
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def allocate_many(self, count: int) -> list[int]:
        """Take up to ``count`` frames (all-or-nothing)."""
        if count < 0:
            raise ConfigError("count must be >= 0")
        if count > self.free_pages:
            raise OutOfMemoryError(
                f"zone {self.zone_id}: requested {count} frames, "
                f"{self.free_pages} free"
            )
        return [self.allocate() for _ in range(count)]

    def free(self, frame: int) -> None:
        """Return a frame to the pool."""
        if not 0 <= frame < self._next_frame:
            raise ConfigError(f"frame {frame} was never allocated")
        if frame in self._free_list:
            raise ConfigError(f"double free of frame {frame}")
        self._free_list.append(frame)


class PhysicalMemory:
    """All physical frames in the system, one allocator per zone."""

    def __init__(self, topology: SystemTopology) -> None:
        self.topology = topology
        self._allocators = {
            zone.zone_id: ZoneAllocator(zone.zone_id, zone.capacity_pages)
            for zone in topology
        }

    def allocator(self, zone_id: int) -> ZoneAllocator:
        try:
            return self._allocators[zone_id]
        except KeyError:
            raise ConfigError(f"no zone {zone_id} in {self.topology.name}")

    def free_pages(self, zone_id: int) -> int:
        return self.allocator(zone_id).free_pages

    def used_pages(self, zone_id: int) -> int:
        return self.allocator(zone_id).used_pages

    def total_free_pages(self) -> int:
        return sum(a.free_pages for a in self._allocators.values())

    def has_space(self, zone_id: int) -> bool:
        return not self.allocator(zone_id).full

    def allocate(self, preferred: Sequence[int],
                 strict: bool = False) -> PageMapping:
        """Allocate one frame following a zone preference chain.

        ``preferred`` lists zone ids most-preferred first.  By default,
        zones missing from the list are appended in id order as a last
        resort so a policy bug can never fail an allocation the machine
        could serve.  With ``strict=True`` (MPOL_BIND semantics) only
        the listed zones are tried and exhaustion raises.
        """
        chain = list(preferred)
        if not strict:
            chain += [z for z in self._allocators if z not in preferred]
        for zone_id in chain:
            allocator = self.allocator(zone_id)
            if not allocator.full:
                return PageMapping(zone_id, allocator.allocate())
        raise OutOfMemoryError(
            f"zones {chain} exhausted in topology {self.topology.name}"
        )

    def free(self, mapping: PageMapping) -> None:
        """Return one frame."""
        self.allocator(mapping.zone_id).free(mapping.frame)

    def occupancy(self) -> dict[int, tuple[int, int]]:
        """``{zone_id: (used_pages, capacity_pages)}`` snapshot."""
        return {
            zone_id: (alloc.used_pages, alloc.capacity_pages)
            for zone_id, alloc in self._allocators.items()
        }
