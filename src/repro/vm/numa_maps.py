"""``/proc/<pid>/numa_maps``-style placement introspection.

On Linux, `numa_maps` is how administrators verify where a process's
pages actually landed; debugging placement policies without it is
guesswork.  This module renders the same view for a simulated
:class:`repro.vm.process.Process`: one line per allocation with its
policy-relevant metadata and per-node page counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import PAGE_SIZE
from repro.vm.process import Process


@dataclass(frozen=True)
class AllocationPlacement:
    """Placement breakdown of one allocation."""

    name: str
    va_start: int
    n_pages: int
    pages_by_zone: tuple[int, ...]
    mapped_pages: int

    @property
    def dominant_zone(self) -> int:
        """Zone holding the most pages of this allocation."""
        return int(np.argmax(self.pages_by_zone))

    def zone_fraction(self, zone_id: int) -> float:
        if self.mapped_pages == 0:
            return 0.0
        return self.pages_by_zone[zone_id] / self.mapped_pages


def allocation_breakdown(process: Process) -> tuple[AllocationPlacement, ...]:
    """Per-allocation zone page counts, in program order."""
    n_zones = len(process.topology)
    breakdown = []
    for allocation in process.space.allocations:
        counts = np.zeros(n_zones, dtype=np.int64)
        mapped = 0
        for vpn in allocation.vpns():
            if process.space.is_mapped(vpn):
                virtual_address = vpn * PAGE_SIZE
                mapping = process.space.translate(virtual_address)
                counts[mapping.zone_id] += 1
                mapped += 1
        breakdown.append(AllocationPlacement(
            name=allocation.name,
            va_start=allocation.va_start,
            n_pages=allocation.n_pages,
            pages_by_zone=tuple(int(c) for c in counts),
            mapped_pages=mapped,
        ))
    return tuple(breakdown)


def numa_maps(process: Process) -> str:
    """Render the process's placement in numa_maps style.

    One line per allocation::

        10000000 policy=<task policy> name=<alloc> anon=<pages> N0=.. N1=..

    plus a summary line with per-zone totals and occupancy.
    """
    lines = []
    policy_name = process.policy.name
    for item in allocation_breakdown(process):
        node_counts = " ".join(
            f"N{zone}={count}"
            for zone, count in enumerate(item.pages_by_zone)
            if count
        ) or "unmapped"
        lines.append(
            f"{item.va_start:012x} policy={policy_name} "
            f"name={item.name} anon={item.mapped_pages} {node_counts}"
        )
    totals = process.physical.occupancy()
    summary = " ".join(
        f"N{zone}: {used}/{capacity} pages"
        for zone, (used, capacity) in sorted(totals.items())
    )
    lines.append(f"total: {summary}")
    return "\n".join(lines)
