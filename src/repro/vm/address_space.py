"""Per-process virtual address space and page table.

The address space hands out page-aligned virtual ranges with a bump
allocator (heap grows upward from :data:`HEAP_BASE`) and records the
physical mapping of every virtual page.  Mappings are stored in dense
numpy arrays indexed by virtual page number, which makes the hot
experiment path — "which zone serves this page?" for a few hundred
thousand trace entries — a single fancy-index operation.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.errors import AllocationError, TranslationError
from repro.core.units import PAGE_SIZE, bytes_to_pages
from repro.vm.page import Allocation, PageMapping, vpn_of

#: Bottom of the simulated heap.  Non-zero so that address zero stays an
#: obviously invalid pointer, as on a real machine.
HEAP_BASE = 0x1000_0000

#: Sentinel in the zone array for unmapped pages.
UNMAPPED = -1


class AddressSpace:
    """Virtual address space of one process."""

    def __init__(self) -> None:
        self._next_va = HEAP_BASE
        self._allocations: list[Allocation] = []
        base_vpn = HEAP_BASE // PAGE_SIZE
        self._base_vpn = base_vpn
        self._zone = np.full(0, UNMAPPED, dtype=np.int16)
        self._frame = np.full(0, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Virtual range management
    # ------------------------------------------------------------------

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        """All live allocations in program order."""
        return tuple(self._allocations)

    @property
    def footprint_bytes(self) -> int:
        """Sum of allocation sizes (page-rounded)."""
        return sum(a.n_pages * PAGE_SIZE for a in self._allocations)

    @property
    def footprint_pages(self) -> int:
        return sum(a.n_pages for a in self._allocations)

    def reserve(self, size_bytes: int, name: str = "",
                hint: Optional[object] = None,
                hotness: float = 1.0) -> Allocation:
        """Reserve a page-aligned virtual range without mapping it."""
        if size_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        allocation = Allocation(
            alloc_id=len(self._allocations),
            name=name or f"alloc{len(self._allocations)}",
            va_start=self._next_va,
            size_bytes=size_bytes,
            hint=hint,
            hotness=hotness,
        )
        self._next_va = allocation.va_end
        self._allocations.append(allocation)
        self._grow_tables(allocation.first_vpn + allocation.n_pages)
        return allocation

    def allocation_of(self, virtual_address: int) -> Allocation:
        """The allocation containing ``virtual_address``."""
        for allocation in self._allocations:
            if allocation.contains(virtual_address):
                return allocation
        raise TranslationError(
            f"address {virtual_address:#x} is not in any allocation"
        )

    # ------------------------------------------------------------------
    # Page table
    # ------------------------------------------------------------------

    def _grow_tables(self, end_vpn: int) -> None:
        needed = end_vpn - self._base_vpn
        if needed <= len(self._zone):
            return
        grow = needed - len(self._zone)
        self._zone = np.concatenate(
            [self._zone, np.full(grow, UNMAPPED, dtype=np.int16)]
        )
        self._frame = np.concatenate(
            [self._frame, np.full(grow, -1, dtype=np.int64)]
        )

    def _index(self, vpn: int) -> int:
        idx = vpn - self._base_vpn
        if idx < 0 or idx >= len(self._zone):
            raise TranslationError(f"vpn {vpn} outside managed range")
        return idx

    def map_page(self, vpn: int, mapping: PageMapping) -> None:
        """Install the physical mapping for one virtual page."""
        idx = self._index(vpn)
        if self._zone[idx] != UNMAPPED:
            raise TranslationError(f"vpn {vpn} is already mapped")
        self._zone[idx] = mapping.zone_id
        self._frame[idx] = mapping.frame

    def unmap_page(self, vpn: int) -> PageMapping:
        """Remove and return the mapping for one virtual page."""
        idx = self._index(vpn)
        if self._zone[idx] == UNMAPPED:
            raise TranslationError(f"vpn {vpn} is not mapped")
        mapping = PageMapping(int(self._zone[idx]), int(self._frame[idx]))
        self._zone[idx] = UNMAPPED
        self._frame[idx] = -1
        return mapping

    def is_mapped(self, vpn: int) -> bool:
        idx = vpn - self._base_vpn
        if idx < 0 or idx >= len(self._zone):
            return False
        return self._zone[idx] != UNMAPPED

    def translate(self, virtual_address: int) -> PageMapping:
        """Zone and frame backing ``virtual_address``."""
        idx = self._index(vpn_of(virtual_address))
        if self._zone[idx] == UNMAPPED:
            raise TranslationError(
                f"page fault: {virtual_address:#x} is unmapped"
            )
        return PageMapping(int(self._zone[idx]), int(self._frame[idx]))

    def zone_of_vpns(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorized translation of virtual page numbers to zone ids.

        Raises :class:`TranslationError` if any page is unmapped — a
        trace touching an unmapped page is a simulator bug, not a
        recoverable fault.
        """
        idx = np.asarray(vpns, dtype=np.int64) - self._base_vpn
        if idx.size and (idx.min() < 0 or idx.max() >= len(self._zone)):
            raise TranslationError("vpn outside managed range")
        zones = self._zone[idx]
        if idx.size and zones.min() == UNMAPPED:
            bad = int(np.asarray(vpns)[zones == UNMAPPED][0])
            raise TranslationError(f"page fault: vpn {bad} is unmapped")
        return zones.astype(np.int64)

    def zone_map(self) -> np.ndarray:
        """Zone id per *allocated* page, in allocation/program order.

        This is the canonical "placement vector" the experiment harness
        and the analytic engines consume: entry ``k`` is the zone backing
        the ``k``-th page of the program footprint.
        """
        pieces = []
        for allocation in self._allocations:
            start = allocation.first_vpn - self._base_vpn
            pieces.append(self._zone[start:start + allocation.n_pages])
        if not pieces:
            return np.empty(0, dtype=np.int16)
        flat = np.concatenate(pieces)
        if flat.size and flat.min() == UNMAPPED:
            raise TranslationError("zone_map() on partially mapped space")
        return flat
