"""The process: where address space, physical memory and policy meet.

A :class:`Process` owns one :class:`AddressSpace`, shares the system's
:class:`PhysicalMemory`, and applies placement policies at allocation
time — the paper studies *initial* placement, explicitly deferring page
migration (Section 5.5), so pages are placed once, when faulted in.

Two usage styles are supported, matching the two software layers in the
paper:

* the **OS style** — ``set_mempolicy`` + ``mmap`` with the task policy,
  ``mbind`` to override a specific range (Section 2.2);
* the **bulk style** used by the experiment harness — reserve every
  allocation, then :meth:`place_all` with one policy, which gives
  whole-program policies (the oracle) their two-phase ``prepare`` hook.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.errors import AllocationError, PolicyError
from repro.memory.acpi import FirmwareTables, enumerate_tables
from repro.memory.topology import SystemTopology
from repro.policies.base import PlacementContext, PlacementPolicy
from repro.policies.local import LocalPolicy
from repro.vm.address_space import AddressSpace
from repro.vm.allocator import PhysicalMemory
from repro.vm.page import Allocation


class Process:
    """A GPU-side process with allocation-time page placement."""

    def __init__(self, topology: SystemTopology,
                 physical: Optional[PhysicalMemory] = None,
                 tables: Optional[FirmwareTables] = None,
                 policy: Optional[PlacementPolicy] = None,
                 seed: int = 0) -> None:
        self.topology = topology
        self.physical = physical if physical is not None else PhysicalMemory(topology)
        self.tables = tables if tables is not None else enumerate_tables(topology)
        self.space = AddressSpace()
        self._policy = policy if policy is not None else LocalPolicy()
        self._vma_policies: dict[int, PlacementPolicy] = {}
        self._ctx = PlacementContext(
            tables=self.tables,
            physical=self.physical,
            local_zone=topology.gpu_local_zone,
            rng=np.random.default_rng(seed),
        )
        self._prepared_policies: set[int] = set()

    @property
    def context(self) -> PlacementContext:
        """The placement context policies are evaluated in."""
        return self._ctx

    @property
    def policy(self) -> PlacementPolicy:
        """The task-wide default policy."""
        return self._policy

    # ------------------------------------------------------------------
    # Linux-shaped API
    # ------------------------------------------------------------------

    def set_mempolicy(self, policy: PlacementPolicy) -> None:
        """Replace the task default policy (affects future faults only)."""
        self._policy = policy
        self._prepared_policies.discard(id(policy))

    def mbind(self, allocation: Allocation,
              policy: PlacementPolicy) -> None:
        """Attach a per-range policy, as ``mbind(2)`` does for a VMA.

        Must run before the range is faulted in: this model places pages
        exactly once (no migration), mirroring the paper's focus on
        initial placement.
        """
        if any(self.space.is_mapped(vpn) for vpn in allocation.vpns()):
            raise PolicyError(
                f"mbind on {allocation.name!r} after pages were placed; "
                "this model does not migrate pages"
            )
        self._vma_policies[allocation.alloc_id] = policy
        self._prepared_policies.discard(id(policy))

    def reserve(self, size_bytes: int, name: str = "",
                hint: Optional[object] = None,
                hotness: float = 1.0) -> Allocation:
        """Reserve a virtual range without faulting pages in."""
        return self.space.reserve(size_bytes, name=name, hint=hint,
                                  hotness=hotness)

    def mmap(self, size_bytes: int, name: str = "",
             hint: Optional[object] = None,
             hotness: float = 1.0) -> Allocation:
        """Reserve and immediately fault in a range with the task policy."""
        allocation = self.reserve(size_bytes, name=name, hint=hint,
                                  hotness=hotness)
        self.fault_in(allocation)
        return allocation

    def fault_in(self, allocation: Allocation) -> None:
        """Place every page of ``allocation`` using its effective policy."""
        policy = self._vma_policies.get(allocation.alloc_id, self._policy)
        self._ensure_prepared(policy)
        strict = bool(getattr(policy, "strict", False))
        for page_index, vpn in enumerate(allocation.vpns()):
            if self.space.is_mapped(vpn):
                continue
            chain = policy.preferred_zones(allocation, page_index, self._ctx)
            mapping = self.physical.allocate(chain, strict=strict)
            self.space.map_page(vpn, mapping)

    def _ensure_prepared(self, policy: PlacementPolicy) -> None:
        if id(policy) not in self._prepared_policies:
            policy.prepare(self.space.allocations, self._ctx)
            self._prepared_policies.add(id(policy))

    # ------------------------------------------------------------------
    # Bulk style for the experiment harness
    # ------------------------------------------------------------------

    def place_all(self, policy: Optional[PlacementPolicy] = None) -> np.ndarray:
        """Fault in every reserved-but-unmapped allocation.

        Runs the policy's two-phase ``prepare`` over the complete
        allocation list first, then places pages in program order.
        Returns the footprint zone map (zone id per page, program
        order) — the vector the performance engines consume.
        """
        if policy is not None:
            self.set_mempolicy(policy)
        active = self._policy
        active.prepare(self.space.allocations, self._ctx)
        self._prepared_policies.add(id(active))
        for allocation in self.space.allocations:
            self.fault_in(allocation)
        return self.zone_map()

    def zone_map(self) -> np.ndarray:
        """Zone id per footprint page, program order."""
        return self.space.zone_map()

    def free(self, allocation: Allocation) -> None:
        """Release the physical frames of ``allocation``.

        The virtual range stays reserved (no VA reuse), which keeps
        trace virtual addresses stable across the run.
        """
        for vpn in allocation.vpns():
            if self.space.is_mapped(vpn):
                self.physical.free(self.space.unmap_page(vpn))

    def occupancy_fraction(self, zone_id: int) -> float:
        """Fraction of a zone's frames currently used."""
        used, capacity = self.physical.occupancy()[zone_id]
        return used / capacity
