"""libNUMA-shaped allocation interface (Section 2.2).

The paper notes Linux provides "a library interface called libNUMA for
applications to request memory allocations from specific NUMA zones",
with the caveats that motivated the hint-based design: placement is
low-level, zone layouts differ between machines, and there is no
performance feedback.  This module reproduces the familiar surface of
that C API over a :class:`repro.vm.process.Process`, so the examples
and tests can contrast raw libNUMA programming against the abstract
BO/CO/BW hints of Section 5.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import AllocationError, PolicyError
from repro.policies.interleave import InterleavePolicy
from repro.policies.local import LocalPolicy
from repro.vm.mempolicy import BindPolicy, PreferredPolicy
from repro.vm.page import Allocation
from repro.vm.process import Process


class LibNuma:
    """A per-process handle mimicking the libNUMA entry points."""

    def __init__(self, process: Process) -> None:
        self.process = process

    # ------------------------------------------------------------------
    # Topology discovery
    # ------------------------------------------------------------------

    def numa_available(self) -> int:
        """0 when NUMA support exists (the C API's convention)."""
        return 0 if len(self.process.topology) >= 1 else -1

    def numa_max_node(self) -> int:
        """Highest NUMA node id in the system."""
        return len(self.process.topology) - 1

    def numa_num_configured_nodes(self) -> int:
        return len(self.process.topology)

    def numa_node_size(self, node: int) -> tuple[int, int]:
        """(total_bytes, free_bytes) of a node, like numa_node_size64."""
        zone = self.process.topology.zone(node)
        free = self.process.physical.free_pages(node)
        return zone.capacity_bytes, free * 4096

    def numa_distance(self, a: int, b: int) -> int:
        """SLIT distance between two nodes (10 = local)."""
        return self.process.tables.slit.distance(a, b)

    def numa_preferred(self) -> int:
        """The node LOCAL allocation would use."""
        return self.process.topology.gpu_local_zone

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def numa_alloc_onnode(self, size: int, node: int,
                          name: str = "") -> Allocation:
        """Allocate preferentially on ``node`` (falls back when full)."""
        self._check_node(node)
        allocation = self.process.reserve(size, name=name)
        self.process.mbind(allocation, PreferredPolicy(node))
        self.process.fault_in(allocation)
        return allocation

    def numa_alloc_strict(self, size: int, node: int,
                          name: str = "") -> Allocation:
        """Allocate strictly on ``node``; OOM when it is full."""
        self._check_node(node)
        allocation = self.process.reserve(size, name=name)
        self.process.mbind(allocation, BindPolicy([node]))
        self.process.fault_in(allocation)
        return allocation

    def numa_alloc_interleaved(self, size: int,
                               name: str = "",
                               nodes: Optional[list[int]] = None
                               ) -> Allocation:
        """Allocate round-robin across nodes (numa_alloc_interleaved /
        _subset)."""
        if nodes is not None:
            for node in nodes:
                self._check_node(node)
        allocation = self.process.reserve(size, name=name)
        self.process.mbind(allocation, InterleavePolicy(zone_subset=nodes))
        self.process.fault_in(allocation)
        return allocation

    def numa_alloc_local(self, size: int, name: str = "") -> Allocation:
        """Allocate on the local node (the default policy)."""
        allocation = self.process.reserve(size, name=name)
        self.process.mbind(allocation, LocalPolicy())
        self.process.fault_in(allocation)
        return allocation

    def numa_free(self, allocation: Allocation) -> None:
        """Release the allocation's physical frames."""
        self.process.free(allocation)

    # ------------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node <= self.numa_max_node():
            raise PolicyError(
                f"node {node} out of range 0..{self.numa_max_node()}"
            )
