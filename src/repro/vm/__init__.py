"""Virtual memory substrate: pages, allocators, address spaces, mempolicy."""

from repro.vm.address_space import HEAP_BASE, UNMAPPED, AddressSpace
from repro.vm.allocator import PhysicalMemory, ZoneAllocator
from repro.vm.mempolicy import (
    BindPolicy,
    MemPolicyMode,
    PreferredPolicy,
    policy_for_mode,
)
from repro.vm.page import Allocation, PageMapping, page_offset, vpn_of
from repro.vm.process import Process

__all__ = [
    "HEAP_BASE",
    "UNMAPPED",
    "AddressSpace",
    "PhysicalMemory",
    "ZoneAllocator",
    "BindPolicy",
    "MemPolicyMode",
    "PreferredPolicy",
    "policy_for_mode",
    "Allocation",
    "PageMapping",
    "page_offset",
    "vpn_of",
    "Process",
]
