"""Linux-shaped memory policy API.

The paper frames BW-AWARE as "adding another mode (MPOL_BWAWARE) to the
set_mempolicy() system call"; this module provides that system-call
surface.  :class:`MemPolicyMode` mirrors the kernel's mode constants
plus the proposed mode, :func:`policy_for_mode` builds the matching
decision object, and two small kernel policies (MPOL_BIND,
MPOL_PREFERRED) that the paper's libNUMA discussion references are
implemented here directly.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.core.errors import PolicyError
from repro.policies.base import PlacementContext, PlacementPolicy, spill_chain
from repro.policies.bwaware import BwAwarePolicy
from repro.policies.interleave import InterleavePolicy
from repro.policies.local import LocalPolicy
from repro.vm.page import Allocation


class MemPolicyMode(enum.Enum):
    """``set_mempolicy`` modes, including the paper's MPOL_BWAWARE."""

    MPOL_DEFAULT = "default"      # LOCAL allocation
    MPOL_PREFERRED = "preferred"  # one preferred zone, then nearest
    MPOL_BIND = "bind"            # strict nodemask, OOM when exhausted
    MPOL_INTERLEAVE = "interleave"
    MPOL_BWAWARE = "bwaware"      # the proposed mode (Section 3.1)


class BindPolicy(PlacementPolicy):
    """MPOL_BIND: allocate only from the nodemask, strictly."""

    name = "BIND"
    strict = True

    def __init__(self, nodemask: Sequence[int]) -> None:
        zones = tuple(dict.fromkeys(int(z) for z in nodemask))
        if not zones:
            raise PolicyError("MPOL_BIND needs a non-empty nodemask")
        self._zones = zones

    def preferred_zones(self, allocation: Allocation, page_index: int,
                        ctx: PlacementContext) -> Sequence[int]:
        return self._zones

    def describe(self) -> str:
        return f"BIND {list(self._zones)} (strict)"


class PreferredPolicy(PlacementPolicy):
    """MPOL_PREFERRED: one preferred zone, graceful fallback."""

    name = "PREFERRED"

    def __init__(self, zone_id: int) -> None:
        if zone_id < 0:
            raise PolicyError("preferred zone must be >= 0")
        self._zone = int(zone_id)

    def preferred_zones(self, allocation: Allocation, page_index: int,
                        ctx: PlacementContext) -> Sequence[int]:
        return spill_chain(self._zone, ctx)

    def describe(self) -> str:
        return f"PREFERRED zone {self._zone}"


def policy_for_mode(mode: MemPolicyMode,
                    nodemask: Optional[Sequence[int]] = None,
                    fractions: Optional[Sequence[float]] = None
                    ) -> PlacementPolicy:
    """Build the decision object for a ``set_mempolicy``-style request.

    ``nodemask`` is required for MPOL_BIND and MPOL_PREFERRED and
    optional for MPOL_INTERLEAVE (defaults to all zones).  ``fractions``
    optionally pins MPOL_BWAWARE to an explicit split instead of the
    SBIT-derived one.
    """
    if mode is MemPolicyMode.MPOL_DEFAULT:
        return LocalPolicy()
    if mode is MemPolicyMode.MPOL_INTERLEAVE:
        return InterleavePolicy(zone_subset=nodemask)
    if mode is MemPolicyMode.MPOL_BWAWARE:
        return BwAwarePolicy(fractions=fractions)
    if mode is MemPolicyMode.MPOL_BIND:
        if not nodemask:
            raise PolicyError("MPOL_BIND requires a nodemask")
        return BindPolicy(nodemask)
    if mode is MemPolicyMode.MPOL_PREFERRED:
        if not nodemask or len(list(nodemask)) != 1:
            raise PolicyError("MPOL_PREFERRED takes exactly one zone")
        return PreferredPolicy(list(nodemask)[0])
    raise PolicyError(f"unhandled mode {mode}")
