"""Page-level primitives shared by the VM layer.

Virtual address space is managed at 4 KiB page granularity, matching the
granularity the paper profiles and places at.  A mapped page is a
``(zone_id, frame)`` pair; an :class:`Allocation` is the VM-layer record
of one ``cudaMalloc``/``mmap`` call and is the unit the annotation-based
policy attaches hints to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.core.errors import AllocationError
from repro.core.units import PAGE_SIZE, bytes_to_pages


class PageMapping(NamedTuple):
    """Physical backing of one virtual page."""

    zone_id: int
    frame: int


def vpn_of(virtual_address: int) -> int:
    """Virtual page number containing ``virtual_address``."""
    if virtual_address < 0:
        raise AllocationError(f"negative virtual address {virtual_address}")
    return virtual_address // PAGE_SIZE


def page_offset(virtual_address: int) -> int:
    """Byte offset of ``virtual_address`` within its page."""
    if virtual_address < 0:
        raise AllocationError(f"negative virtual address {virtual_address}")
    return virtual_address % PAGE_SIZE


@dataclass(frozen=True)
class Allocation:
    """One heap allocation: a contiguous virtual range with metadata.

    ``hint`` is the Section 5.2 placement hint (a
    :class:`repro.runtime.hints.PlacementHint` value) or ``None`` for
    unannotated allocations, which fall back to the process policy.
    ``hotness`` is the program-annotated relative access weight used by
    :func:`repro.runtime.hints.get_allocation`; it is advisory metadata,
    never read by the hardware model.
    """

    alloc_id: int
    name: str
    va_start: int
    size_bytes: int
    hint: Optional[object] = None
    hotness: float = 1.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise AllocationError(
                f"allocation {self.name!r} must have positive size"
            )
        if self.va_start % PAGE_SIZE:
            raise AllocationError(
                f"allocation {self.name!r} start not page aligned"
            )
        if self.hotness < 0:
            raise AllocationError(
                f"allocation {self.name!r} hotness must be >= 0"
            )

    @property
    def n_pages(self) -> int:
        """Pages spanned by this allocation (size rounded up)."""
        return bytes_to_pages(self.size_bytes)

    @property
    def first_vpn(self) -> int:
        return self.va_start // PAGE_SIZE

    @property
    def va_end(self) -> int:
        """One past the last mapped byte (page aligned)."""
        return self.va_start + self.n_pages * PAGE_SIZE

    def contains(self, virtual_address: int) -> bool:
        """True if ``virtual_address`` falls inside this allocation."""
        return self.va_start <= virtual_address < self.va_end

    def vpns(self) -> range:
        """Virtual page numbers covered by this allocation."""
        return range(self.first_vpn, self.first_vpn + self.n_pages)
