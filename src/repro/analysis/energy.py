"""DRAM and interconnect energy accounting.

Section 2.1 motivates heterogeneous memory partly on energy: GDDR5
costs significantly more energy per access than DDR4/LPDDR4, and
on-package stacks (HBM/WIO2) cost less still.  The placement policies
therefore shift not just bandwidth but energy: BW-AWARE moves ~30% of
traffic from GDDR5 (~14 pJ/bit) to DDR4 (~6 pJ/bit), cutting DRAM
energy per byte even as it raises performance — at the price of
interconnect transfer energy for the remote share.

:func:`energy_report` turns a simulation result into per-zone DRAM
picojoules plus interconnect energy for hop-crossing traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigError
from repro.gpu.trace import SimResult
from repro.memory.topology import SystemTopology

#: energy to move one bit across the coherent GPU-CPU link, pJ.
#: NVLink-class links are commonly quoted near 8-10 pJ/bit end to end;
#: we charge it only to zones behind a hop.
LINK_PJ_PER_BIT = 10.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated execution."""

    dram_pj_by_zone: tuple[float, ...]
    link_pj: float
    total_bytes: float

    @property
    def dram_pj(self) -> float:
        return sum(self.dram_pj_by_zone)

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.link_pj

    @property
    def pj_per_byte(self) -> float:
        """Average memory-system energy per DRAM byte moved."""
        if self.total_bytes <= 0:
            raise ConfigError("no traffic to normalize energy by")
        return self.total_pj / self.total_bytes

    @property
    def dram_pj_per_byte(self) -> float:
        """DRAM-only energy per byte (excluding the link tax)."""
        if self.total_bytes <= 0:
            raise ConfigError("no traffic to normalize energy by")
        return self.dram_pj / self.total_bytes

    def render(self) -> str:
        zones = ", ".join(
            f"z{idx}={pj / 1e6:.2f}uJ"
            for idx, pj in enumerate(self.dram_pj_by_zone)
        )
        return (f"energy: {self.total_pj / 1e6:.2f} uJ total "
                f"({zones}; link {self.link_pj / 1e6:.2f} uJ), "
                f"{self.pj_per_byte:.2f} pJ/B")


def energy_report(sim: SimResult,
                  topology: SystemTopology,
                  link_pj_per_bit: float = LINK_PJ_PER_BIT
                  ) -> EnergyReport:
    """Account DRAM + link energy for a simulation result."""
    if link_pj_per_bit < 0:
        raise ConfigError("link_pj_per_bit must be >= 0")
    if len(sim.bytes_by_zone) != len(topology):
        raise ConfigError(
            "result covers a different zone count than the topology"
        )
    dram = []
    link = 0.0
    for zone, n_bytes in zip(topology, sim.bytes_by_zone):
        bits = float(n_bytes) * 8.0
        dram.append(bits * zone.technology.energy_pj_per_bit)
        if zone.hop_cycles > 0:
            link += bits * link_pj_per_bit
    return EnergyReport(
        dram_pj_by_zone=tuple(dram),
        link_pj=link,
        total_bytes=float(sim.bytes_by_zone.sum()),
    )


def efficiency_gbps_per_watt(sim: SimResult,
                             topology: SystemTopology) -> float:
    """Memory-system bandwidth efficiency of one run, GB/s per watt."""
    report = energy_report(sim, topology)
    power_w = report.total_pj * 1e-12 / (sim.total_time_ns * 1e-9)
    if power_w <= 0:
        raise ConfigError("zero memory power")
    return sim.achieved_bandwidth / 1e9 / power_w
