"""ASCII chart rendering for figure results.

The regenerators print numeric tables; for eyeballing *shape* — the
knee in Figure 4, the crossover in Figure 5 — a terminal plot is worth
a hundred rows.  :func:`ascii_chart` renders a :class:`FigureResult`'s
series onto a character grid with one marker per series, no plotting
dependency required (the environment is offline).
"""

from __future__ import annotations

from repro.analysis.report import FigureResult
from repro.core.errors import ReproError

#: series markers, assigned in order.
MARKERS = "ox+*#@%&"


def ascii_chart(figure: FigureResult, width: int = 60,
                height: int = 16) -> str:
    """Render a FigureResult as an ASCII scatter/line chart."""
    if width < 10 or height < 4:
        raise ReproError("chart needs at least 10x4 characters")
    shown = figure.series
    truncated = 0
    if len(shown) > len(MARKERS):
        # Keep the summary series (geomean) if present, then an even
        # sample of the rest; note the truncation in the legend.
        keep = [s for s in shown if s.label == "geomean"]
        others = [s for s in shown if s.label != "geomean"]
        budget = len(MARKERS) - len(keep)
        step = max(1, len(others) // budget)
        keep += others[::step][:budget]
        truncated = len(shown) - len(keep)
        shown = tuple(keep)
    figure = FigureResult(
        figure_id=figure.figure_id, title=figure.title,
        x_label=figure.x_label, y_label=figure.y_label,
        series=shown, notes=figure.notes,
    )
    xs = [x for series in figure.series for x in series.x]
    ys = [y for series in figure.series for y in series.y]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = marker

    for series, marker in zip(figure.series, MARKERS):
        # Linear interpolation between points for a line-ish look.
        for (x0, y0), (x1, y1) in zip(zip(series.x, series.y),
                                      zip(series.x[1:], series.y[1:])):
            steps = max(2, width // max(len(series.x) - 1, 1))
            for step in range(steps + 1):
                t = step / steps
                place(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, marker)
        for x, y in zip(series.x, series.y):
            place(x, y, marker)

    lines = [f"{figure.figure_id}: {figure.title}"]
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{x_min:.3g}".ljust(width - 6) + f"{x_max:.3g}".rjust(6)
    lines.append(" " * pad + "  " + x_axis)
    lines.append(" " * pad + f"  x = {figure.x_label}, "
                 f"y = {figure.y_label}")
    legend = "  ".join(
        f"{marker}={series.label}"
        for series, marker in zip(figure.series, MARKERS)
    )
    if truncated:
        legend += f"  (+{truncated} series not shown)"
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
