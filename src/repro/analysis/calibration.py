"""Reproduction scorecard: measured headline numbers vs paper targets.

The paper's evaluation reduces to a handful of headline claims (BW-AWARE
+18% over LOCAL, annotated ~90% of oracle, ...).  This module measures
each claim on the live simulator and scores it against the published
value with an acceptance band — the repository's continuously checkable
statement of reproduction quality, also exposed as ``repro calibrate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.metrics import geomean
from repro.experiments.common import throughput
from repro.workloads.suite import workload_names


@dataclass(frozen=True)
class Claim:
    """One headline claim: a paper value with an acceptance band."""

    name: str
    paper_value: float
    lower: float
    upper: float
    measure: Callable[[Sequence[str]], float]

    def evaluate(self, workloads: Sequence[str]) -> "ClaimResult":
        measured = self.measure(workloads)
        return ClaimResult(
            name=self.name,
            paper_value=self.paper_value,
            measured=measured,
            lower=self.lower,
            upper=self.upper,
        )


@dataclass(frozen=True)
class ClaimResult:
    name: str
    paper_value: float
    measured: float
    lower: float
    upper: float

    @property
    def within_band(self) -> bool:
        return self.lower <= self.measured <= self.upper

    @property
    def relative_error(self) -> float:
        return (self.measured - self.paper_value) / self.paper_value

    def render(self) -> str:
        status = "OK " if self.within_band else "OUT"
        return (f"[{status}] {self.name:<38} paper={self.paper_value:6.3f} "
                f"measured={self.measured:6.3f} "
                f"band=[{self.lower:.2f},{self.upper:.2f}] "
                f"err={self.relative_error:+.1%}")


def _geomean_ratio(numerator_policy: str, denominator_policy: str,
                   capacity: Optional[float] = None):
    def measure(workloads: Sequence[str]) -> float:
        ratios = []
        for name in workloads:
            num = throughput(name, numerator_policy,
                             bo_capacity_fraction=capacity)
            den = throughput(name, denominator_policy,
                             bo_capacity_fraction=capacity)
            ratios.append(num / den)
        return geomean(ratios)

    return measure


def _sgemm_worst_case(workloads: Sequence[str]) -> float:
    return (throughput("sgemm", "BW-AWARE")
            / throughput("sgemm", "LOCAL"))


def _capacity_knee(workloads: Sequence[str]) -> float:
    ratios = []
    for name in workloads:
        full = throughput(name, "BW-AWARE")
        constrained = throughput(name, "BW-AWARE",
                                 bo_capacity_fraction=0.7)
        ratios.append(constrained / full)
    return geomean(ratios)


def paper_claims() -> tuple[Claim, ...]:
    """The headline claims this reproduction is scored on."""
    return (
        Claim("BW-AWARE vs LOCAL (unconstrained)", 1.18, 1.05, 1.35,
              _geomean_ratio("BW-AWARE", "LOCAL")),
        Claim("BW-AWARE vs INTERLEAVE (unconstrained)", 1.35, 1.20,
              1.70, _geomean_ratio("BW-AWARE", "INTERLEAVE")),
        Claim("sgemm: BW-AWARE vs LOCAL worst case", 0.88, 0.75, 1.00,
              _sgemm_worst_case),
        Claim("BW-AWARE at 70% BO capacity vs peak", 1.00, 0.93, 1.01,
              _capacity_knee),
        Claim("ORACLE vs BW-AWARE at 10% capacity", 2.00, 1.20, 3.50,
              _geomean_ratio("ORACLE", "BW-AWARE", capacity=0.1)),
        Claim("ANNOTATED vs INTERLEAVE at 10% capacity", 1.19, 1.05,
              1.45, _geomean_ratio("ANNOTATED", "INTERLEAVE",
                                   capacity=0.1)),
        Claim("ANNOTATED vs BW-AWARE at 10% capacity", 1.14, 1.05,
              1.45, _geomean_ratio("ANNOTATED", "BW-AWARE",
                                   capacity=0.1)),
        Claim("ANNOTATED vs ORACLE at 10% capacity", 0.90, 0.80, 1.02,
              _geomean_ratio("ANNOTATED", "ORACLE", capacity=0.1)),
    )


@dataclass(frozen=True)
class Scorecard:
    """All claim evaluations of one calibration run."""

    results: tuple[ClaimResult, ...]
    workloads: tuple[str, ...]

    @property
    def all_within_band(self) -> bool:
        return all(result.within_band for result in self.results)

    @property
    def out_of_band(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.results if not r.within_band)

    def render(self) -> str:
        lines = [f"reproduction scorecard over {len(self.workloads)} "
                 "workloads:"]
        lines += [result.render() for result in self.results]
        verdict = ("all claims within band" if self.all_within_band
                   else f"OUT OF BAND: {', '.join(self.out_of_band)}")
        lines.append(verdict)
        return "\n".join(lines)


def run_scorecard(workloads: Optional[Sequence[str]] = None) -> Scorecard:
    """Evaluate every headline claim (full suite by default)."""
    picked = tuple(workloads) if workloads else workload_names()
    return Scorecard(
        results=tuple(claim.evaluate(picked)
                      for claim in paper_claims()),
        workloads=picked,
    )
