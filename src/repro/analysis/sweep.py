"""Generic experiment sweeps.

The figure regenerators hand-roll their loops; downstream users usually
want "run this workload set against these policies on these systems and
tabulate".  :class:`SweepRunner` does exactly that: a cartesian sweep
over (workload, policy, topology[, capacity]) with normalized output,
reusing the memoized trace layer so large sweeps stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.analysis.report import TableResult
from repro.core.errors import ConfigError, UncacheableSpecError
from repro.core.experiment import ExperimentResult, run_experiment
from repro.core.metrics import geomean
from repro.memory.topology import SystemTopology, simulated_baseline
from repro.policies.base import PlacementPolicy
from repro.runner import active, make_spec
from repro.workloads.base import TraceWorkload
from repro.workloads.suite import get_workload

PolicySpec = Union[str, PlacementPolicy]
WorkloadSpec = Union[str, TraceWorkload]


@dataclass(frozen=True)
class SweepCell:
    """One completed sweep point."""

    workload: str
    policy: str
    topology: str
    capacity: Optional[float]
    result: ExperimentResult


class SweepRunner:
    """Cartesian (workload x policy x topology x capacity) sweeps."""

    def __init__(self,
                 workloads: Sequence[WorkloadSpec],
                 policies: Sequence[PolicySpec],
                 topologies: Optional[Mapping[str, SystemTopology]] = None,
                 capacities: Sequence[Optional[float]] = (None,),
                 trace_accesses: Optional[int] = None,
                 seed: int = 0) -> None:
        if not workloads:
            raise ConfigError("sweep needs at least one workload")
        if not policies:
            raise ConfigError("sweep needs at least one policy")
        if not capacities:
            raise ConfigError("sweep needs at least one capacity point")
        self.workloads = tuple(
            w if isinstance(w, TraceWorkload) else get_workload(w)
            for w in workloads
        )
        self.policies = tuple(policies)
        self.topologies = dict(
            topologies if topologies is not None
            else {"baseline": simulated_baseline()}
        )
        if not self.topologies:
            raise ConfigError("sweep needs at least one topology")
        self.capacities = tuple(capacities)
        self.trace_accesses = trace_accesses
        self.seed = seed
        self._cells: list[SweepCell] = []

    @staticmethod
    def _policy_label(policy: PolicySpec) -> str:
        return policy if isinstance(policy, str) else policy.name

    def run(self) -> tuple[SweepCell, ...]:
        """Execute the full sweep (idempotent; cached afterwards).

        Cells whose policies canonicalize go through the active
        :mod:`repro.runner` (cache + worker pool) as one batch;
        non-canonicalizable policy objects run in-process, so arbitrary
        policies keep working at the cost of cacheability.
        """
        if self._cells:
            return tuple(self._cells)
        grid = [
            (workload, topo_name, topology, capacity, policy)
            for workload in self.workloads
            for topo_name, topology in self.topologies.items()
            for capacity in self.capacities
            for policy in self.policies
        ]
        specs, spec_slots = [], []
        for slot, (workload, _, topology, capacity, policy) \
                in enumerate(grid):
            try:
                specs.append(make_spec(
                    workload, policy,
                    topology=topology,
                    bo_capacity_fraction=capacity,
                    trace_accesses=self.trace_accesses,
                    seed=self.seed,
                ))
                spec_slots.append(slot)
            except UncacheableSpecError:
                pass
        results: dict[int, ExperimentResult] = dict(
            zip(spec_slots, active().run(specs).results)
        )
        for slot, (workload, topo_name, topology, capacity, policy) \
                in enumerate(grid):
            result = results.get(slot)
            if result is None:
                result = run_experiment(
                    workload,
                    policy=policy,
                    topology=topology,
                    bo_capacity_fraction=capacity,
                    trace_accesses=self.trace_accesses,
                    seed=self.seed,
                )
            self._cells.append(SweepCell(
                workload=workload.name,
                policy=self._policy_label(policy),
                topology=topo_name,
                capacity=capacity,
                result=result,
            ))
        return tuple(self._cells)

    def cell(self, workload: str, policy: str,
             topology: Optional[str] = None,
             capacity: Optional[float] = None) -> SweepCell:
        """Look one point up (runs the sweep if needed)."""
        self.run()
        for candidate in self._cells:
            if (candidate.workload == workload
                    and candidate.policy == policy
                    and (topology is None or candidate.topology == topology)
                    and candidate.capacity == capacity):
                return candidate
        raise ConfigError(
            f"no sweep cell ({workload}, {policy}, {topology}, "
            f"{capacity})"
        )

    def table(self, baseline_policy: Optional[str] = None,
              topology: Optional[str] = None,
              capacity: Optional[float] = None) -> TableResult:
        """Workload x policy table for one (topology, capacity) slice.

        Values are throughput, normalized per workload to
        ``baseline_policy`` when given.
        """
        self.run()
        topo_name = (topology if topology is not None
                     else next(iter(self.topologies)))
        labels = [self._policy_label(p) for p in self.policies]
        rows = []
        per_policy: dict[str, list[float]] = {l: [] for l in labels}
        for workload in self.workloads:
            raw = {
                label: self.cell(workload.name, label, topo_name,
                                 capacity).result.throughput
                for label in labels
            }
            base = raw[baseline_policy] if baseline_policy else 1.0
            values = tuple(raw[label] / base for label in labels)
            for label, value in zip(labels, values):
                per_policy[label].append(value)
            rows.append((workload.name, values))
        notes = {}
        if baseline_policy:
            notes = {
                f"geomean_{label}": geomean(per_policy[label])
                for label in labels
            }
        return TableResult(
            figure_id=f"sweep[{topo_name}"
                      + (f",cap={capacity}" if capacity else "") + "]",
            title="policy sweep"
                  + (f" (vs {baseline_policy})" if baseline_policy else ""),
            columns=tuple(labels),
            rows=tuple(rows),
            notes=notes,
        )
