"""Result tabulation and rendering."""

from repro.analysis.report import FigureResult, Series, TableResult

__all__ = ["FigureResult", "Series", "TableResult"]
