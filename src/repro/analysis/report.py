"""Result containers and ASCII rendering for the figure regenerators.

Every experiment module in :mod:`repro.experiments` returns either a
:class:`FigureResult` (series over a swept parameter — the line plots)
or a :class:`TableResult` (per-workload columns — the bar charts), both
of which render to fixed-width text so benches and examples can print
exactly the rows/series the paper's figures report.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.errors import ReproError


@dataclass(frozen=True)
class Series:
    """One labeled line of a figure."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(f"series {self.label!r}: x/y length mismatch")
        if not self.x:
            raise ReproError(f"series {self.label!r} is empty")

    def y_at(self, x_value: float) -> float:
        """The y value at an exact swept x point."""
        for xi, yi in zip(self.x, self.y):
            if xi == x_value:
                return yi
        raise ReproError(f"series {self.label!r} has no point x={x_value}")

    def peak_x(self) -> float:
        """The x position of the maximum y value."""
        best = max(range(len(self.y)), key=self.y.__getitem__)
        return self.x[best]


@dataclass(frozen=True)
class FigureResult:
    """A line-plot figure: several series over one swept axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: Mapping[str, float] = field(default_factory=dict)

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise ReproError(f"{self.figure_id}: no series {label!r}")

    def labels(self) -> tuple[str, ...]:
        return tuple(series.label for series in self.series)

    def render(self, precision: int = 3) -> str:
        """Fixed-width table: one row per x point, one column per series."""
        width = max(12, *(len(s.label) + 2 for s in self.series))
        lines = [f"{self.figure_id}: {self.title}",
                 f"  x = {self.x_label}, y = {self.y_label}"]
        header = f"{self.x_label[:14]:>14} " + " ".join(
            f"{s.label[:width]:>{width}}" for s in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        xs = self.series[0].x
        for series in self.series:
            if series.x != xs:
                raise ReproError(
                    f"{self.figure_id}: series have mismatched x axes"
                )
        for i, x in enumerate(xs):
            row = f"{x:>14.4g} " + " ".join(
                f"{s.y[i]:>{width}.{precision}f}" for s in self.series
            )
            lines.append(row)
        if self.notes:
            lines.append("notes: " + ", ".join(
                f"{key}={value:.3f}" for key, value in self.notes.items()
            ))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Plot-ready CSV: x column followed by one column per series."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([self.x_label] + [s.label for s in self.series])
        xs = self.series[0].x
        for series in self.series:
            if series.x != xs:
                raise ReproError(
                    f"{self.figure_id}: series have mismatched x axes"
                )
        for i, x in enumerate(xs):
            writer.writerow([x] + [series.y[i] for series in self.series])
        return buffer.getvalue()

    def to_json(self) -> str:
        """Structured JSON with axes, series and headline notes."""
        return json.dumps({
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"label": s.label, "x": list(s.x), "y": list(s.y)}
                for s in self.series
            ],
            "notes": dict(self.notes),
        })


@dataclass(frozen=True)
class TableResult:
    """A bar-chart figure: one row per workload, one column per config."""

    figure_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[str, tuple[float, ...]], ...]
    notes: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, values in self.rows:
            if len(values) != len(self.columns):
                raise ReproError(
                    f"{self.figure_id}: row {label!r} has {len(values)} "
                    f"values for {len(self.columns)} columns"
                )

    def row(self, label: str) -> tuple[float, ...]:
        for row_label, values in self.rows:
            if row_label == label:
                return values
        raise ReproError(f"{self.figure_id}: no row {label!r}")

    def column(self, name: str) -> tuple[float, ...]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ReproError(f"{self.figure_id}: no column {name!r}")
        return tuple(values[index] for _, values in self.rows)

    def row_labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.rows)

    def render(self, precision: int = 3) -> str:
        width = max(12, *(len(c) + 2 for c in self.columns))
        lines = [f"{self.figure_id}: {self.title}"]
        header = f"{'workload':>12} " + " ".join(
            f"{c[:width]:>{width}}" for c in self.columns
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, values in self.rows:
            lines.append(f"{label:>12} " + " ".join(
                f"{v:>{width}.{precision}f}" for v in values
            ))
        if self.notes:
            lines.append("notes: " + ", ".join(
                f"{key}={value:.3f}" for key, value in self.notes.items()
            ))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Plot-ready CSV: workload column + one column per config."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["workload"] + list(self.columns))
        for label, values in self.rows:
            writer.writerow([label] + list(values))
        return buffer.getvalue()

    def to_json(self) -> str:
        """Structured JSON with columns, rows and headline notes."""
        return json.dumps({
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                {"label": label, "values": list(values)}
                for label, values in self.rows
            ],
            "notes": dict(self.notes),
        })
