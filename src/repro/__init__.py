"""repro — reproduction of "Page Placement Strategies for GPUs within
Heterogeneous Memory Systems" (Agarwal et al., ASPLOS 2015).

The library models a cache-coherent GPU/CPU system with heterogeneous
memory pools (bandwidth-optimized + capacity-optimized), the OS page
placement policies the paper studies (Linux LOCAL and INTERLEAVE, the
proposed BW-AWARE), an oracle, and the profile-driven annotation
workflow of Section 5 — all on top of a trace-driven GPU memory system
simulator.

Quickstart::

    from repro import (
        simulated_baseline, make_policy, get_workload, run_experiment,
    )

    topo = simulated_baseline()
    wl = get_workload("bfs")
    for name in ("LOCAL", "INTERLEAVE", "BW-AWARE"):
        result = run_experiment(wl, topology=topo,
                                policy=make_policy(name))
        print(name, result.relative_performance)
"""

from repro.core.errors import ReproError
from repro.core.units import GB, GIB, PAGE_SIZE

__version__ = "1.0.0"

# Re-export the primary public API lazily to keep import time low and
# avoid import cycles while subpackages are assembled.
_API = {
    # memory
    "SystemTopology": "repro.memory.topology",
    "MemoryZone": "repro.memory.zone",
    "ZoneKind": "repro.memory.zone",
    "simulated_baseline": "repro.memory.topology",
    "desktop_topology": "repro.memory.topology",
    "hpc_topology": "repro.memory.topology",
    "mobile_topology": "repro.memory.topology",
    "symmetric_topology": "repro.memory.topology",
    "figure1_systems": "repro.memory.topology",
    "enumerate_tables": "repro.memory.acpi",
    # vm
    "Process": "repro.vm.process",
    "PhysicalMemory": "repro.vm.allocator",
    "AddressSpace": "repro.vm.address_space",
    "MemPolicyMode": "repro.vm.mempolicy",
    # policies
    "make_policy": "repro.policies.registry",
    "policy_names": "repro.policies.registry",
    "BwAwarePolicy": "repro.policies.bwaware",
    "LocalPolicy": "repro.policies.local",
    "InterleavePolicy": "repro.policies.interleave",
    "OraclePolicy": "repro.policies.oracle",
    "AnnotatedPolicy": "repro.policies.annotated",
    "PlacementHint": "repro.policies.annotated",
    # gpu
    "GpuConfig": "repro.gpu.config",
    "table1_config": "repro.gpu.config",
    # workloads
    "get_workload": "repro.workloads.suite",
    "scenario_names": "repro.workloads.suite",
    "workload_names": "repro.workloads.suite",
    "TraceWorkload": "repro.workloads.base",
    "DataStructureSpec": "repro.workloads.base",
    # profiling
    "PageAccessProfiler": "repro.profiling.profiler",
    "AccessCdf": "repro.profiling.cdf",
    # runtime
    "CudaRuntime": "repro.runtime.cuda",
    "get_allocation": "repro.runtime.hints",
    # experiments
    "run_experiment": "repro.core.experiment",
    "compare_policies": "repro.core.experiment",
    "ExperimentResult": "repro.core.experiment",
    # extension topologies
    "three_pool_topology": "repro.memory.topology",
    "link_limited_baseline": "repro.memory.topology",
    "chiplet_topology": "repro.memory.topology",
    "topology_by_name": "repro.memory.topology",
    "DistanceMatrix": "repro.memory.distance",
    # closed-loop ratio tuning
    "RatioController": "repro.tuning",
    "autotune": "repro.tuning",
    "AutotuneReport": "repro.tuning",
    "TunedProfileStore": "repro.tuning",
    # migration (Section 5.5 extension)
    "MigrationSimulator": "repro.migration.engine",
    "EpochMigrationPolicy": "repro.migration.policy",
    "HotnessTracker": "repro.migration.tracker",
    "MigrationCostModel": "repro.migration.cost",
    # kernel IR (Section 5.1 substrate)
    "KernelWorkload": "repro.kernelsim.workload",
    "profile_program": "repro.kernelsim.instrument",
    # traces
    "DramTrace": "repro.gpu.trace",
    "save_trace": "repro.gpu.trace_io",
    "load_trace": "repro.gpu.trace_io",
    "ExternalTraceWorkload": "repro.workloads.external",
    # energy
    "energy_report": "repro.analysis.energy",
    # libNUMA shim
    "LibNuma": "repro.vm.libnuma",
    # observability & harness utilities
    "numa_maps": "repro.vm.numa_maps",
    "allocation_breakdown": "repro.vm.numa_maps",
    "SweepRunner": "repro.analysis.sweep",
    "run_scorecard": "repro.analysis.calibration",
}

__all__ = sorted(_API) + ["GB", "GIB", "PAGE_SIZE", "ReproError",
                          "__version__"]


def __getattr__(name: str):
    module_name = _API.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
