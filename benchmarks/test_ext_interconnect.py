"""Extension bench: link-bandwidth sensitivity of placement gains."""

from conftest import emit
from repro.experiments import ext_interconnect


def test_ext_interconnect(regenerate):
    figure = regenerate(ext_interconnect.run_links)
    emit(figure)
    bwaware = figure.get("BW-AWARE")
    interleave = figure.get("INTERLEAVE")
    # Gains grow with link bandwidth and saturate once the link stops
    # binding (the CO pool itself is 80 GB/s).
    assert bwaware.y_at(16.0) < bwaware.y_at(80.0)
    assert abs(bwaware.y_at(150.0) - bwaware.y_at(1000.0)) < 0.01
    # A PCIe3-class link leaves almost nothing for placement to win,
    # but a link-aware SBIT keeps BW-AWARE from falling off a cliff.
    assert bwaware.y_at(16.0) > 0.90
    # INTERLEAVE, blind to the link, collapses on it.
    assert interleave.y_at(16.0) < 0.5
