"""Extension bench: memory-system energy by placement policy."""

from conftest import emit
from repro.experiments import ext_energy


def test_ext_energy(regenerate):
    table = regenerate(ext_energy.run_energy)
    emit(table)
    # BW-AWARE shifts ~30% of traffic to the cheaper DDR4 pool: DRAM
    # energy per byte falls well below LOCAL...
    assert table.notes["bwaware_dram_pj_per_byte_vs_local"] < 0.90
    # ...while the interconnect tax makes total energy a wash.
    assert 0.95 <= table.notes["bwaware_pj_per_byte_vs_local"] <= 1.10
    # LOCAL burns the GDDR5 rate on every byte.
    for value in table.column("LOCAL"):
        assert abs(value - 112.0) < 0.5  # 14 pJ/bit * 8
