"""Figure 5 regenerator: policy comparison across CO bandwidths."""

from conftest import emit
from repro.experiments import fig05_bw_ratio


def test_fig5_bandwidth_ratio_sweep(regenerate):
    figure = regenerate(fig05_bw_ratio.run)
    emit(figure)
    local = figure.get("LOCAL")
    interleave = figure.get("INTERLEAVE")
    bwaware = figure.get("BW-AWARE")

    # LOCAL never uses CO bandwidth: flat reference at 1.0.
    assert all(abs(y - 1.0) < 1e-9 for y in local.y)
    # INTERLEAVE collapses when the CO pool is weak...
    assert interleave.y_at(10.0) < 0.3
    # ...and crosses LOCAL somewhere below the symmetric point.
    assert interleave.y_at(200.0) > 1.0
    # BW-AWARE exploits any extra bandwidth: monotone increasing...
    assert all(a <= b + 0.02 for a, b in zip(bwaware.y, bwaware.y[1:]))
    # ...and never falls meaningfully below LOCAL.
    assert min(bwaware.y) > 0.92
    # At the symmetric point BW-AWARE ~= INTERLEAVE (same 50/50 split;
    # random draws vs round-robin differ only by sampling noise).
    assert figure.notes["bwaware_vs_interleave_at_symmetric"] > 0.90
    # BW-AWARE strictly better than INTERLEAVE in heterogeneous cases.
    for x in (10.0, 40.0, 80.0, 120.0):
        assert bwaware.y_at(x) > interleave.y_at(x), x
