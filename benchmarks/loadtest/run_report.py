"""Produce the committed scale-out serving report (REPORT_<rev>.json).

Four measured scenarios, all through ``repro.serve.loadtest`` (closed
loop — offered load tracks service capacity, so "saturated QPS" is
well defined):

1. ``single_placement``  — saturated placement QPS, single daemon;
2. ``cluster_placement`` — the same offered load, router + N shards;
3. ``cluster_mixed``     — placement + cold-simulate overload against
   a deliberately small admission queue: shows bounded placement p99
   while cold work is shed with 429 + Retry-After;
4. ``single_mixed``      — the same mixed overload against the single
   daemon, for contrast (no lanes: placement still answers, but
   there is no cold-shedding front door).

Plus a correctness check: the same simulate spec through the cluster
and through a single daemon must return byte-identical ``result``
payloads.

Run from the repo root::

    PYTHONPATH=src python benchmarks/loadtest/run_report.py \
        [--shards 4] [--duration 10] [--out benchmarks/loadtest/...]

The report records the host (CPU count!) alongside the numbers: the
acceptance target for sharding (>= 2.5x placement QPS on 4 shards) is
only reachable with >= ~5 cores; on smaller hosts the report is still
the honest record of the overload behaviour (lanes, shedding,
Retry-After), which is host-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

from repro.serve import (
    BackgroundCluster,
    BackgroundServer,
    ServeClient,
    ServeConfig,
)
from repro.serve.loadtest import format_summary, run_loadtest


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _fresh_cache() -> str:
    return tempfile.mkdtemp(prefix="loadtest-cache-")


def placement_scenario(url: str, duration_s: float,
                       workers: int) -> dict:
    return run_loadtest(url, duration_s=duration_s,
                        placement_workers=workers, simulate_workers=0)


def mixed_scenario(url: str, duration_s: float,
                   placement_workers: int,
                   simulate_workers: int) -> dict:
    # Long cold simulates (500k accesses) + a small distinct-spec pool
    # that keeps refreshing: sustained cold pressure for the admission
    # queue while placement traffic rides alongside.
    return run_loadtest(url, duration_s=duration_s,
                        placement_workers=placement_workers,
                        simulate_workers=simulate_workers,
                        distinct_specs=64,
                        trace_accesses=500_000)


def byte_identical_check(cluster_url: str) -> dict:
    """Same spec through the cluster and a fresh single daemon."""
    via_cluster = ServeClient(cluster_url, timeout_s=120).simulate(
        workload="stencil", seed=7, trace_accesses=20_000, retries=5)
    with BackgroundServer(ServeConfig(
            port=0, cache_dir=_fresh_cache())) as single:
        via_single = ServeClient(single.base_url, timeout_s=120).simulate(
            workload="stencil", seed=7, trace_accesses=20_000)
    left = json.dumps(via_cluster["result"], sort_keys=True)
    right = json.dumps(via_single["result"], sort_keys=True)
    return {
        "spec": via_cluster["spec"],
        "identical": left == right,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--placement-workers", type=int, default=8)
    parser.add_argument("--simulate-workers", type=int, default=6)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)

    rev = _git_rev()
    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        f"REPORT_{rev}.json")

    report = {
        "rev": rev,
        "host": {
            "cpus": os.cpu_count(),
            "platform": sys.platform,
            "python": sys.version.split()[0],
        },
        "shards": args.shards,
        "duration_s": args.duration,
        "scenarios": {},
    }

    # --- saturated placement: single daemon ---------------------------
    print("== single daemon: saturated placement ==", flush=True)
    with BackgroundServer(ServeConfig(
            port=0, cache_dir=_fresh_cache())) as single:
        result = placement_scenario(single.base_url, args.duration,
                                    args.placement_workers)
        report["scenarios"]["single_placement"] = result
        print(format_summary(result), flush=True)

    # --- saturated placement: router + shards -------------------------
    print(f"== router + {args.shards} shards: saturated placement ==",
          flush=True)
    with BackgroundCluster(ServeConfig(
            port=0, shards=args.shards,
            cache_dir=_fresh_cache())) as cluster:
        result = placement_scenario(cluster.base_url, args.duration,
                                    args.placement_workers)
        report["scenarios"]["cluster_placement"] = result
        print(format_summary(result), flush=True)

    # --- mixed overload: router + shards, small admission queue -------
    print(f"== router + {args.shards} shards: mixed overload ==",
          flush=True)
    with BackgroundCluster(ServeConfig(
            port=0, shards=args.shards,
            cache_dir=_fresh_cache(),
            proxy_inflight_per_shard=2,
            admission_capacity=8,
            admission_high_watermark=6,
            admission_low_watermark=3)) as cluster:
        result = mixed_scenario(cluster.base_url, args.duration,
                                args.placement_workers,
                                args.simulate_workers)
        report["scenarios"]["cluster_mixed"] = result
        print(format_summary(result), flush=True)
        print("== byte-identical simulate check ==", flush=True)
        check = byte_identical_check(cluster.base_url)
        report["byte_identical_simulate"] = check
        print(f"identical: {check['identical']}", flush=True)

    # --- mixed overload: single daemon (contrast) ----------------------
    print("== single daemon: mixed overload ==", flush=True)
    with BackgroundServer(ServeConfig(
            port=0, cache_dir=_fresh_cache())) as single:
        result = mixed_scenario(single.base_url, args.duration,
                                args.placement_workers,
                                args.simulate_workers)
        report["scenarios"]["single_mixed"] = result
        print(format_summary(result), flush=True)

    scenarios = report["scenarios"]
    single_qps = scenarios["single_placement"]["lanes"][
        "placement"]["qps"]
    cluster_qps = scenarios["cluster_placement"]["lanes"][
        "placement"]["qps"]
    report["summary"] = {
        "placement_qps_single": single_qps,
        "placement_qps_cluster": cluster_qps,
        "placement_speedup": (round(cluster_qps / single_qps, 3)
                              if single_qps else None),
        "mixed_placement_p99_ms_cluster": scenarios["cluster_mixed"][
            "lanes"].get("placement", {}).get("p99_ms"),
        "mixed_shed_429_cluster": scenarios["cluster_mixed"][
            "totals"]["shed_429"],
        "mixed_retry_after_hints": scenarios["cluster_mixed"][
            "retry_after_hints"],
        "byte_identical_simulate": report[
            "byte_identical_simulate"]["identical"],
    }

    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nreport written to {out}")
    print(json.dumps(report["summary"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
