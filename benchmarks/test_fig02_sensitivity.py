"""Figure 2 regenerator: bandwidth and latency sensitivity, 19 workloads."""

from conftest import emit
from repro.experiments import fig02_sensitivity


def test_fig2a_bandwidth_sensitivity(regenerate):
    figure = regenerate(fig02_sensitivity.run_bandwidth)
    emit(figure)
    # Streaming workloads track bandwidth nearly linearly.
    for name in ("lbm", "stencil", "hotspot"):
        assert figure.get(name).y_at(2.0) > 1.7, name
        assert figure.get(name).y_at(0.5) < 0.6, name
    # The controls: comd compute bound, sgemm latency bound.
    assert figure.get("comd").y_at(2.0) < 1.1
    assert figure.get("sgemm").y_at(2.0) < 1.1
    # Most of the suite is bandwidth sensitive (Figure 2a's message).
    sensitive = sum(1 for s in figure.series if s.y_at(2.0) > 1.1)
    assert sensitive >= 15


def test_fig2b_latency_sensitivity(regenerate):
    figure = regenerate(fig02_sensitivity.run_latency)
    emit(figure)
    # "only sgemm stands out as highly latency sensitive".
    assert figure.get("sgemm").y_at(200.0) < 0.6
    tolerant = [s.label for s in figure.series
                if s.label != "sgemm" and s.y_at(200.0) > 0.75]
    assert len(tolerant) == 18, tolerant
