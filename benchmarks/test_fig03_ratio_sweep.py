"""Figure 3 regenerator: the xC-yB placement ratio sweep, 19 workloads.

The headline result of the paper: BW-AWARE (30C-70B on the Table 1
system) beats the Linux LOCAL policy by ~18% and INTERLEAVE by ~35% on
average.  Our simulator reproduces the ordering and approximate factors
(see EXPERIMENTS.md for measured-vs-paper numbers).
"""

from conftest import emit
from repro.experiments import fig03_ratio_sweep


def test_fig3_ratio_sweep(regenerate):
    table = regenerate(fig03_ratio_sweep.run)
    emit(table)

    mean = dict(zip(table.columns, table.row("geomean")))
    # The geomean peaks at the BW-AWARE ratio (30C-70B).
    assert mean["30C-70B"] == max(mean.values())
    # BW-AWARE vs LOCAL: paper +18%, accept the 10-35% band.
    assert 1.10 <= table.notes["bwaware_vs_local"] <= 1.35
    # BW-AWARE vs INTERLEAVE: paper +35%, accept the 25-65% band.
    assert 1.25 <= table.notes["bwaware_vs_interleave"] <= 1.65
    # The latency-sensitive control prefers LOCAL; worst-case loss for
    # BW-AWARE stays moderate (paper: -12%).
    sgemm = dict(zip(table.columns, table.row("sgemm")))
    assert sgemm["0C-100B"] == max(sgemm.values())
    assert sgemm["30C-70B"] >= 0.75
    # The insensitive control does not care.
    comd = table.row("comd")
    assert max(comd) / min(comd) < 1.15
