"""Figure 9 regenerator: annotated allocation code from a profile."""

from conftest import emit
from repro.experiments import fig09_annotation
from repro.policies.annotated import PlacementHint


def test_fig9_annotated_code(regenerate):
    program = regenerate(fig09_annotation.run, "bfs")
    emit(program)

    # The Figure 9b shape: hoisted arrays + GetAllocation + hinted
    # cudaMalloc per data structure.
    assert "GetAllocation(size[], hotness[])" in program.annotated_code
    assert program.annotated_code.count("cudaMalloc") == (
        program.original_code.count("cudaMalloc")
    )
    # Under the 10% constraint the hot bfs structures get BO hints and
    # the big cold edge list stays CO.
    hints = dict(zip(
        ("d_graph_nodes", "d_graph_edges", "d_graph_mask",
         "d_updating_graph_mask", "d_graph_visited", "d_cost"),
        program.hints,
    ))
    assert hints["d_graph_visited"] == PlacementHint.BANDWIDTH_OPTIMIZED.value
    assert hints["d_cost"] == PlacementHint.BANDWIDTH_OPTIMIZED.value
    assert hints["d_graph_edges"] == PlacementHint.CAPACITY_OPTIMIZED.value
