"""Figure 8 regenerator: oracle vs BW-AWARE, constrained and not."""

from repro.core.metrics import geomean

from conftest import emit
from repro.experiments import fig08_oracle


def test_fig8_oracle(regenerate):
    table = regenerate(fig08_oracle.run)
    emit(table)

    # Unconstrained: oracle merely matches BW-AWARE (both reach the
    # ideal bandwidth split).
    unconstrained = table.column("ORACLE")
    assert 0.9 <= geomean(unconstrained) <= 1.1

    rows = {label: dict(zip(table.columns, table.row(label)))
            for label in table.row_labels()}
    # 10% capacity: the oracle "can nearly double the performance of
    # the BW-AWARE policy for applications with highly skewed CDFs".
    for name in ("bfs", "xsbench"):
        assert rows[name]["ORACLE-10%"] >= 1.8 * rows[name]["BW-AWARE-10%"]
    # "it outperforms BW-AWARE placement in all cases".
    for name, row in rows.items():
        assert row["ORACLE-10%"] >= row["BW-AWARE-10%"] - 0.02, name
    # "on average ... nearly 60% the application throughput of a system
    # for which there is no capacity constraint".
    assert 0.45 <= table.notes["oracle10_vs_unconstrained"] <= 0.80
