"""Extension bench: placement granularity vs hotness-aware headroom."""

from conftest import emit
from repro.experiments import ext_granularity


def test_ext_granularity(regenerate):
    figure = regenerate(ext_granularity.run_granularity)
    emit(figure)

    # Structure-aligned hotness (the paper's Section 4/5 premise)
    # survives coarse placement blocks: the skewed workloads keep most
    # of their 4 KiB-page headroom at ~2 MiB-equivalent blocks.
    for name in ("bfs", "xsbench"):
        assert figure.notes[f"{name}_headroom_4k"] > 1.8, name
        assert (figure.notes[f"{name}_headroom_2m"]
                > 0.7 * figure.notes[f"{name}_headroom_4k"]), name

    # The scattered-hot control exposes the decay mechanism: hot pages
    # spread uniformly through the VA space mix into every huge block
    # and the oracle's advantage collapses toward 1.
    scattered = figure.get("scattered-hot")
    assert scattered.y[0] > 2.0
    assert scattered.y[-1] < 1.15
    assert all(a >= b - 0.05 for a, b in zip(scattered.y,
                                             scattered.y[1:]))

    # Linear-CDF workloads have no headroom at any granularity.
    assert max(figure.get("lbm").y) < 1.1
