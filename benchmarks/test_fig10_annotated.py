"""Figure 10 regenerator: annotated placement at 10% BO capacity."""

from conftest import emit
from repro.experiments import fig10_annotated


def test_fig10_annotated(regenerate):
    table = regenerate(fig10_annotated.run)
    emit(table)

    # Paper: annotated beats INTERLEAVE by 19% and BW-AWARE by 14% on
    # average, and reaches ~90% of oracle placement.
    assert 1.08 <= table.notes["annotated_vs_interleave"] <= 1.40
    assert 1.05 <= table.notes["annotated_vs_bwaware"] <= 1.40
    assert 0.80 <= table.notes["annotated_vs_oracle"] <= 1.02

    # The biggest wins land on the skewed, structure-correlated
    # workloads.
    rows = {label: dict(zip(table.columns, table.row(label)))
            for label in table.row_labels()}
    for name in ("bfs", "xsbench"):
        assert rows[name]["ANNOTATED"] > 1.5, name
