"""Extension bench: adaptive vs static BW-AWARE under CPU co-tenancy."""

from conftest import emit
from repro.experiments import ext_cpu_contention


def test_ext_cpu_contention(regenerate):
    figure = regenerate(ext_cpu_contention.run_contention)
    emit(figure)
    static = figure.get("BW-AWARE-static-30C")
    adaptive = figure.get("BW-AWARE-adaptive")

    # Uncontended, the two are the same policy.
    assert abs(static.y_at(0.0) - adaptive.y_at(0.0)) < 0.03
    # As the CPU eats the CO pool, the static firmware ratio keeps
    # oversubscribing it and collapses far below LOCAL...
    assert static.y_at(72.0) < 0.5
    # ...while the adaptive ratio degrades gracefully toward LOCAL
    # (a small residual remote share still taxes the latency-bound
    # outlier, hence the few-percent allowance).
    assert adaptive.y_at(72.0) >= 0.85
    assert adaptive.y_at(40.0) >= 1.0
    # Dynamic bandwidth discovery is worth a large margin at heavy
    # contention.
    assert figure.notes["adaptive_vs_static_at_max_load"] > 2.0
