"""Section 3.2.4: BW-AWARE across the Figure 1 system classes.

The paper argues BW-AWARE "can apply to all of these configurations":
the mobile WIO2+LPDDR4 pairing offers up to +31% aggregate bandwidth
over BO alone, the HPC HBM+DDR pairing just +8%.  This bench runs the
policy comparison on each Figure 1 topology and checks the measured
BW-AWARE gain over LOCAL is bounded by (and tracks) each system's
CO-added bandwidth headroom.
"""

from conftest import emit
from repro.core.metrics import geomean
from repro.experiments.common import throughput
from repro.memory.topology import figure1_systems
from repro.workloads import bandwidth_sensitive_workloads


def _sweep():
    gains = {}
    rows = []
    for topology in figure1_systems():
        ratios = []
        for workload in bandwidth_sensitive_workloads():
            local = throughput(workload, "LOCAL", topology=topology)
            bwaware = throughput(workload, "BW-AWARE",
                                 topology=topology)
            ratios.append(bwaware / local)
        headroom = 1.0 + 1.0 / topology.bw_ratio()
        gains[topology.name] = (geomean(ratios), headroom)
        rows.append(
            f"{topology.name:>20}: BW-AWARE/LOCAL = {gains[topology.name][0]:.3f} "
            f"(aggregate-bandwidth headroom {headroom:.3f})"
        )
    return gains, "\n".join(rows)


def test_section324_topology_gains(regenerate):
    gains, report = regenerate(_sweep)
    emit("Section 3.2.4: BW-AWARE gain per Figure 1 system class\n"
         + report)
    for name, (gain, headroom) in gains.items():
        # The gain never exceeds the aggregate-bandwidth headroom...
        assert gain <= headroom + 0.02, name
        # ...and BW-AWARE stays close to LOCAL even where the headroom
        # is nearly within placement noise (the HPC expanders add just
        # 8%, and the remote hop taxes the moderate-MLP workloads).
        assert gain >= 0.95, name
    # Gains order with the available headroom: desktop (2.5x ratio)
    # > mobile (3.2x) > HPC (12.5x).
    assert (gains["simulated-baseline"][0]
            > gains["mobile"][0]
            > gains["hpc"][0])
    # The HPC expanders' 8% headroom leaves only a small win; the
    # desktop's 40% leaves a large one.
    assert gains["hpc"][0] < 1.10
    assert gains["simulated-baseline"][0] > 1.15
