"""Figure 11 regenerator: annotation robustness across datasets."""

from conftest import emit
from repro.experiments import fig11_datasets


def test_fig11_cross_dataset(regenerate):
    table = regenerate(fig11_datasets.run)
    emit(table)

    # Paper: trained on the first dataset only, annotated placement
    # still beats INTERLEAVE by ~29% and reaches ~80% of the oracle.
    assert 1.15 <= table.notes["annotated_vs_interleave"] <= 2.00
    assert 0.65 <= table.notes["annotated_vs_oracle"] <= 1.02

    # Two test datasets per cross-dataset workload.
    assert len(table.row_labels()) == 8
