"""Figure 7 regenerator: CDF vs data-structure layout case studies."""

from conftest import emit
from repro.experiments import fig07_datastructs


def test_fig7_structure_breakdowns(regenerate):
    results = regenerate(fig07_datastructs.run)
    for breakdown in results.values():
        emit(breakdown)

    bfs = results["bfs"]
    # 7a: three structures consume ~80% of bandwidth in ~20% of pages.
    hot = bfs.hottest_structures(0.75)
    assert set(hot) <= {"d_graph_visited", "d_updating_graph_mask",
                        "d_cost"}
    assert bfs.footprint_of(hot) <= 0.25

    # 7b: mummergpu hotness is not structure aligned — covering 80% of
    # traffic needs most of the footprint, and some ranges are never
    # touched.
    mummer = results["mummergpu"]
    hot = mummer.hottest_structures(0.8)
    assert mummer.footprint_of(hot) > 0.6
    assert mummer.never_accessed_pages > 0.1 * mummer.profile.footprint_pages

    # 7c: needle's hotness varies within the score matrix; the matrix
    # dominates traffic but its pages span the whole hotness range.
    needle = results["needle"]
    assert needle.traffic_shares["score_matrix"] > 0.4
    structures_seen = {p.structure for p in needle.scatter[:40]}
    assert "score_matrix" in structures_seen
