"""Ablation: random-draw BW-AWARE vs exact-counter BW-AWARE.

The paper implements BW-AWARE with a per-page random draw to keep the
allocation fast path stateless, accepting that the achieved ratio only
*converges* to the target.  This ablation quantifies what the random
draw costs against a deterministic counter-based variant that hits the
ratio exactly at every prefix.
"""

from conftest import emit
from repro.core.experiment import run_experiment
from repro.core.metrics import geomean
from repro.experiments.common import EXP_ACCESSES
from repro.policies.bwaware import BwAwarePolicy, CounterBwAwarePolicy
from repro.workloads import workload_names


def _sweep():
    ratios = []
    rows = []
    for name in workload_names():
        random_draw = run_experiment(
            name, policy=BwAwarePolicy(),
            trace_accesses=EXP_ACCESSES).throughput
        counter = run_experiment(
            name, policy=CounterBwAwarePolicy(),
            trace_accesses=EXP_ACCESSES).throughput
        ratio = counter / random_draw
        ratios.append(ratio)
        rows.append(f"{name:>12} counter/random = {ratio:.3f}")
    return ratios, "\n".join(rows)


def test_ablation_random_vs_counter(regenerate):
    ratios, report = regenerate(_sweep)
    emit("ablation: counter-based vs random-draw BW-AWARE\n" + report)
    mean = geomean(ratios)
    # The deterministic variant helps slightly (tighter per-epoch
    # ratios) but the random draw costs only a few percent — the
    # paper's simplicity argument holds.
    assert 0.98 <= mean <= 1.10
    assert max(ratios) < 1.25
