"""Figure 1 regenerator: BW ratios of likely heterogeneous systems."""

from conftest import emit
from repro.experiments import fig01_topologies


def test_fig1(regenerate):
    table = regenerate(fig01_topologies.run)
    emit(table)
    ratios = dict(zip(table.row_labels(), table.column("BW ratio")))
    # Paper: ratios "as low as 2x or as high as 8x" and beyond across
    # mobile / desktop / HPC designs.
    assert 2.0 <= ratios["simulated-baseline"] <= 3.0
    assert 3.0 <= ratios["mobile"] <= 3.5
    assert ratios["hpc"] > 10.0
