"""Extension bench: online migration vs static placement (Section 5.5).

Quantifies the paper's argument for initial placement over dynamic
migration: at the measured migration costs, migrating from a bad
initial placement loses badly to static BW-AWARE; only if migration
were ~100x cheaper (or executions ~100x longer to amortize it) does it
pay, and even free migration merely approaches the static oracle.
"""

import math

from conftest import emit
from repro.experiments import ext_migration


def test_ext_migration(regenerate):
    def _both():
        return {name: ext_migration.run_workload(name)
                for name in ("xsbench", "bfs", "lbm")}

    results = regenerate(_both)
    for figure in results.values():
        emit(figure)

    for name, figure in results.items():
        migrate = figure.get("migrate-from-all-CO")
        oracle = figure.get("static-ORACLE")
        # At paper-measured costs, migration captures only a small
        # fraction of its own zero-cost potential — the overhead eats
        # the benefit.
        assert migrate.y_at(1.0) < 0.25 * oracle.y_at(1.0), name
        # Even free migration cannot beat a perfect initial placement
        # by much (it pays the bad start for early epochs).
        assert migrate.y_at(0.0) <= oracle.y_at(0.0) * 1.10, name
        # Free migration does recover most of the oracle's win on the
        # skewed workloads.
        if name in ("xsbench", "bfs"):
            assert migrate.y_at(0.0) >= 0.6 * oracle.y_at(0.0), name
        # The crossover happens only at >=10x cheaper migration.
        crossover = figure.notes["crossover_cost_scale"]
        assert math.isnan(crossover) or crossover <= 0.1, name
