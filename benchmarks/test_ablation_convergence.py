"""Ablation: convergence of random-draw BW-AWARE placement.

Section 3.2.1: "While this implementation does not exactly follow the
BW-AWARE placement ratio due to the use of random numbers, in practice
this simple policy converges quickly towards the BW-AWARE ratio."
This ablation quantifies *how* quickly: the achieved CO share's error
vs the 80/280 target across seeds, as a function of footprint size —
binomial statistics predict ~1/sqrt(pages) decay, and the performance
cost of the residual error at realistic footprints is negligible.
"""

import numpy as np

from conftest import emit
from repro.core.units import PAGE_SIZE
from repro.memory.topology import simulated_baseline
from repro.policies.bwaware import BwAwarePolicy
from repro.vm.process import Process

FOOTPRINTS = (64, 256, 1024, 4096, 16384)
SEEDS = 30
TARGET = 80 / 280


def _mean_abs_error(n_pages: int) -> float:
    errors = []
    for seed in range(SEEDS):
        process = Process(simulated_baseline(), seed=seed)
        process.reserve(n_pages * PAGE_SIZE)
        zone_map = process.place_all(BwAwarePolicy())
        co_share = float((zone_map == 1).mean())
        errors.append(abs(co_share - TARGET))
    return float(np.mean(errors))


def _sweep():
    rows = []
    errors = []
    for n_pages in FOOTPRINTS:
        error = _mean_abs_error(n_pages)
        errors.append(error)
        predicted = np.sqrt(TARGET * (1 - TARGET) / n_pages)
        rows.append(f"{n_pages:>7} pages: mean |error| = {error:.4f} "
                    f"(binomial prediction {predicted:.4f})")
    return errors, "\n".join(rows)


def test_ablation_ratio_convergence(regenerate):
    errors, report = regenerate(_sweep)
    emit("ablation: random-draw convergence to the BW-AWARE ratio\n"
         + report)
    # Error shrinks monotonically (within noise) with footprint...
    assert errors[-1] < errors[0] / 4
    # ...matching ~1/sqrt(n): quadrupling pages roughly halves error.
    for small, big in zip(errors, errors[2:]):
        assert big < small
    # At a realistic footprint the residual ratio error is under 1%,
    # supporting the paper's stateless fast-path argument.
    assert errors[-1] < 0.01
