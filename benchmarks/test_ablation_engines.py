"""Ablation: analytic ThroughputEngine vs event-driven DetailedEngine.

The figure sweeps run on the vectorized epoch model; this ablation
validates it against the request-level event-driven engine on every
workload and the three Section 3 policies: the two engines must agree
on the policy ranking everywhere and on magnitude within a tolerance.
"""

import numpy as np

from conftest import emit
from repro.core.experiment import run_experiment
from repro.workloads import workload_names

POLICIES = ("LOCAL", "INTERLEAVE", "BW-AWARE")
ACCESSES = 60_000


def _sweep():
    agreements = []
    rows = []
    for name in workload_names():
        times = {}
        for engine in ("throughput", "detailed"):
            times[engine] = [
                run_experiment(name, policy=policy, engine=engine,
                               trace_accesses=ACCESSES).time_ns
                for policy in POLICIES
            ]
        rank_fast = np.argsort(times["throughput"]).tolist()
        rank_slow = np.argsort(times["detailed"]).tolist()
        errors = [
            abs(f - d) / d
            for f, d in zip(times["throughput"], times["detailed"])
        ]
        agreements.append((name, rank_fast == rank_slow, max(errors)))
        rows.append(f"{name:>12} same-rank={rank_fast == rank_slow} "
                    f"max-err={max(errors):.1%}")
    return agreements, "\n".join(rows)


def test_ablation_engine_agreement(regenerate):
    agreements, report = regenerate(_sweep)
    emit("ablation: throughput vs detailed engine\n" + report)
    mismatched = [name for name, same, _ in agreements if not same]
    assert not mismatched, mismatched
    worst = max(error for _, _, error in agreements)
    assert worst < 0.25, f"engines diverge by {worst:.1%}"
