"""Figure 4 regenerator: BW-AWARE vs shrinking BO capacity."""

from conftest import emit
from repro.experiments import fig04_capacity


def test_fig4_capacity_sweep(regenerate):
    figure = regenerate(fig04_capacity.run)
    emit(figure)
    mean = figure.get("geomean")
    # Near-peak performance down to 70% of the footprint in BO: the
    # "30% effective extra capacity" claim.
    assert mean.y_at(1.0) >= 0.99
    assert mean.y_at(0.7) >= 0.95
    # Falloff below the 70% knee.
    assert mean.y_at(0.5) < mean.y_at(0.7)
    assert mean.y_at(0.1) < 0.6
    # Memory-insensitive workloads hold their performance (comd).
    assert figure.get("comd").y_at(0.1) > 0.9
