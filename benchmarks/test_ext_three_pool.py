"""Extension bench: BW-AWARE generalization to three memory pools."""

from conftest import emit
from repro.experiments import ext_three_pool


def test_ext_three_pool(regenerate):
    table = regenerate(ext_three_pool.run_three_pool)
    emit(table)
    # Section 3.1's generalization claim: the three-way bandwidth-ratio
    # split beats LOCAL, INTERLEAVE and both two-pool restrictions.
    assert table.notes["bwaware_vs_local"] > 1.15
    assert table.notes["bwaware_vs_interleave"] > 1.25
    assert table.notes["bwaware_vs_best_two_pool"] > 1.02
    # The random draw lands within a few percent of the exact
    # three-way ratio.
    assert table.notes["max_split_error"] < 0.05
