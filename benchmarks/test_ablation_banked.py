"""Ablation: do the placement conclusions survive row-buffer effects?

The figure sweeps use the peak-bandwidth analytic engine; real DRAM
loses bandwidth to row activate/precharge on irregular streams.  This
ablation re-runs the Section 3 policy comparison on the bank-level
engine for every workload and checks the ordering — BW-AWARE > LOCAL >
INTERLEAVE for bandwidth-sensitive workloads — is not an artifact of
ignoring row buffers.
"""

from conftest import emit
from repro.core.experiment import run_experiment
from repro.core.metrics import geomean
from repro.workloads import bandwidth_sensitive_workloads

ACCESSES = 60_000


def _sweep():
    rows = []
    gains_local, gains_interleave = [], []
    for workload in bandwidth_sensitive_workloads():
        times = {
            policy: run_experiment(workload, policy=policy,
                                   engine="banked",
                                   trace_accesses=ACCESSES).time_ns
            for policy in ("LOCAL", "INTERLEAVE", "BW-AWARE")
        }
        gains_local.append(times["LOCAL"] / times["BW-AWARE"])
        gains_interleave.append(times["INTERLEAVE"] / times["BW-AWARE"])
        rows.append(
            f"{workload.name:>12} BW/LOCAL={gains_local[-1]:.2f} "
            f"BW/IL={gains_interleave[-1]:.2f}"
        )
    return gains_local, gains_interleave, "\n".join(rows)


def test_ablation_banked_engine(regenerate):
    gains_local, gains_interleave, report = regenerate(_sweep)
    emit("ablation: Section 3 ordering on the bank-level engine\n"
         + report)
    # BW-AWARE must still win on (geomean over) the bandwidth-sensitive
    # suite, at factors comparable to the analytic engine.
    assert geomean(gains_local) > 1.08
    assert geomean(gains_interleave) > 1.25
    # And per workload, BW-AWARE never loses badly to LOCAL.
    assert min(gains_local) > 0.9
