"""Benchmark harness configuration.

Every benchmark regenerates one paper exhibit end to end (all 19
workloads at the experiment-suite trace length), prints the rows/series
the paper reports (visible with ``pytest -s``), and asserts the
paper-shape invariants so a regression in reproduction quality fails
the bench.  Timing is one round per exhibit — these are reproduction
harnesses, not micro-benchmarks.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regenerate(benchmark):
    """Run a figure regenerator once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


def emit(result) -> None:
    """Print a rendered exhibit below the benchmark table."""
    print()
    print(result.render() if hasattr(result, "render") else result)
