"""Table 1 regenerator: the simulated system configuration."""

from conftest import emit
from repro.experiments import tab01_config


def test_table1(regenerate):
    table = regenerate(tab01_config.run)
    emit(tab01_config.render(table))
    assert table["GPU Cores"] == "15 SMs @ 1.4Ghz"
    assert "8-channels, 200GB/sec" in table["GPU-Local"]
    assert "4-channels, 80GB/sec" in table["GPU-Remote"]
    assert table["DRAM Timings"] == "RCD=12,RP=12,RC=40,CL=12,WR=12"
    assert table["GPU-CPU Interconnect Latency"] == "100 GPU core cycles"
