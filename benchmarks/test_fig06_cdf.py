"""Figure 6 regenerator: page-access CDFs for all 19 workloads."""

from conftest import emit
from repro.experiments import fig06_cdf


def test_fig6_cdfs(regenerate):
    figure = regenerate(fig06_cdf.run)
    emit(figure)
    # The paper's skew examples: ">60% of the memory bandwidth stems
    # from within only 10% of the application's allocated pages" for
    # bfs and xsbench.
    assert figure.notes["bfs_top10"] >= 0.55
    assert figure.notes["xsbench_top10"] >= 0.55
    # Linear-CDF workloads have no placement headroom.
    for name in ("hotspot", "lbm", "stencil", "srad"):
        assert figure.notes[f"{name}_top10"] <= 0.25, name
    # Every CDF is monotone (to float tolerance) and saturates at 1.
    for series in figure.series:
        assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:]))
        assert abs(series.y[-1] - 1.0) < 1e-9
